"""Unit tests for the data-memory dataflow pass (uarch/dataflow.py).

The pass must prove a load shot-local exactly when a same-shot store
to the same address dominates it (the *kill*), prove a store dead
exactly when no un-killed load can alias it, and stay conservative
whenever an address is not statically known.  Its verdict drives the
replay whitelist: dead-store and spill/reload programs ride the fast
path, loads that can observe an earlier shot's store fall back with
per-pc reason strings.  (Kill-analysis and counted-loop edge cases
live in test_kill_analysis.py.)
"""

import numpy as np
import pytest

from repro.core import Assembler, two_qubit_instantiation
from repro.quantum import NoiseModel, QuantumPlant
from repro.uarch import QuMAv2, analyze_data_memory


def make_machine(seed=0, noise=None):
    isa = two_qubit_instantiation()
    plant = QuantumPlant(isa.topology,
                         noise=noise or NoiseModel.noiseless(),
                         rng=np.random.default_rng(seed))
    return QuMAv2(isa, plant)


def analyze(text):
    machine = make_machine()
    machine.load(Assembler(machine.isa).assemble_text(text))
    return analyze_data_memory(machine.instruction_memory())


class TestStoreLiveness:
    def test_no_memory_traffic_is_safe(self):
        report = analyze("""
        SMIS S2, {2}
        X90 S2
        MEASZ S2
        QWAIT 50
        STOP
        """)
        assert report.replay_safe
        assert report.store_count == 0
        assert report.dead_store_count == 0

    def test_store_without_any_load_is_dead(self):
        report = analyze("""
        LDI R0, 7
        LDI R1, 16
        ST R0, R1(0)
        ST R0, R1(4)
        STOP
        """)
        assert report.replay_safe
        assert report.store_count == 2
        assert report.dead_store_count == 2

    def test_store_then_load_same_address_is_killed(self):
        """The dominating same-shot store kills the load: it can only
        ever observe this shot's value, so the pair is replay-safe
        scratch traffic."""
        report = analyze("""
        LDI R0, 7
        LDI R1, 16
        ST R0, R1(0)
        LD R2, R1(0)
        STOP
        """)
        assert report.replay_safe
        assert report.killed_load_count == 1
        assert report.dead_store_count == 1

    def test_load_above_store_same_address_is_still_live(self):
        """Data memory persists across shots: a load textually above
        the store observes the *previous* shot's store."""
        report = analyze("""
        LDI R1, 16
        LD R2, R1(0)
        LDI R0, 7
        ST R0, R1(0)
        STOP
        """)
        assert not report.replay_safe

    def test_disjoint_constant_addresses_are_safe(self):
        report = analyze("""
        LDI R0, 7
        LDI R1, 16
        LDI R2, 64
        ST R0, R1(0)
        LD R3, R2(0)
        STOP
        """)
        assert report.replay_safe
        assert report.dead_store_count == 1
        assert report.load_count == 1

    def test_unknown_store_address_without_loads_is_safe(self):
        """The store address comes from memory (not statically known),
        but with no loads anywhere nothing can observe it."""
        report = analyze("""
        LDI R0, 8
        ST R0, R0(0)
        STOP
        """)
        assert report.replay_safe

    def test_unknown_store_address_with_a_load_is_live(self):
        report = analyze("""
        LDI R0, 8
        LDI R1, 16
        LD R2, R1(0)
        ST R0, R2(0)
        STOP
        """)
        assert not report.replay_safe
        assert any("unknown" in reason for reason in report.live_reasons)

    def test_unknown_load_address_with_a_store_is_live(self):
        report = analyze("""
        LDI R0, 8
        LDI R1, 16
        ST R0, R1(0)
        LD R2, R1(0)
        LD R3, R2(0)
        STOP
        """)
        assert not report.replay_safe

    def test_constants_fold_through_the_alu(self):
        """ADD of two known constants keeps the address known: the
        store lands at 32, disjoint from the load at 16."""
        report = analyze("""
        LDI R0, 7
        LDI R1, 16
        ADD R2, R1, R1
        ST R0, R2(0)
        LD R3, R1(0)
        STOP
        """)
        assert report.replay_safe
        assert report.dead_store_count == 1

    def test_divergent_store_address_aliasing_a_load_is_live(self):
        """An FMR-steered branch gives the store two possible
        addresses; a load matching either of them may observe the
        previous shot's store, so the program must count live."""
        report = analyze("""
        SMIS S2, {2}
        X90 S2
        MEASZ S2
        QWAIT 50
        FMR R4, Q2
        LDI R0, 1
        CMP R4, R0
        BR EQ, other
        LDI R2, 8
        BR ALWAYS, join
        other:
        LDI R2, 16
        join:
        ST R0, R2(0)
        LDI R1, 8
        LD R3, R1(0)
        STOP
        """)
        assert not report.replay_safe
        assert any("live" in reason for reason in report.live_reasons)

    def test_divergent_store_addresses_disjoint_from_loads_stay_safe(self):
        """Path sensitivity keeps both divergent store addresses
        precise (the old join would have lost them): a load disjoint
        from both stays replay-safe."""
        report = analyze("""
        SMIS S2, {2}
        X90 S2
        MEASZ S2
        QWAIT 50
        FMR R4, Q2
        LDI R0, 1
        CMP R4, R0
        BR EQ, other
        LDI R2, 8
        BR ALWAYS, join
        other:
        LDI R2, 16
        join:
        ST R0, R2(0)
        LDI R1, 64
        LD R3, R1(0)
        STOP
        """)
        assert report.replay_safe
        assert report.dead_store_count == 1

    def test_statically_resolved_branch_follows_one_arm_only(self):
        """A branch whose CMP operands are constants is resolved by
        the exploration engine: the untaken arm's divergent address
        never materialises, so the store address stays exact."""
        report = analyze("""
        LDI R0, 1
        LDI R1, 0
        CMP R1, R0
        BR EQ, other
        LDI R2, 8
        BR ALWAYS, join
        other:
        LDI R2, 16
        join:
        ST R0, R2(0)
        LD R3, R1(4)
        STOP
        """)
        # CMP 0, 1 -> EQ is statically false: R2 is 8 on the only
        # reachable path, disjoint from the load at 4.
        assert report.replay_safe
        assert report.dead_store_count == 1

    def test_branch_join_with_agreeing_constants_stays_known(self):
        report = analyze("""
        LDI R0, 1
        LDI R1, 0
        CMP R1, R0
        BR EQ, other
        LDI R2, 64
        BR ALWAYS, join
        other:
        LDI R2, 64
        join:
        ST R0, R2(0)
        LD R3, R1(4)
        STOP
        """)
        assert report.replay_safe
        assert report.dead_store_count == 1

    def test_unreachable_memory_traffic_is_ignored(self):
        report = analyze("""
        LDI R0, 16
        BR ALWAYS, end
        ST R0, R0(0)
        LD R1, R0(0)
        end:
        STOP
        """)
        assert report.replay_safe
        assert report.store_count == 0
        assert report.load_count == 0

    def test_counted_loop_unrolls_and_terminates(self):
        """A counted loop storing each iteration: the exploration
        engine unrolls it (the loop-carried ADD stays a constant per
        iteration), and with no loads the stores stay dead."""
        report = analyze("""
        LDI R0, 4
        LDI R1, 1
        LDI R2, 16
        loop:
        ST R1, R2(0)
        ADD R2, R2, R0
        SUB R0, R0, R1
        CMP R0, R1
        BR GT, loop
        STOP
        """)
        assert report.replay_safe
        assert report.store_count == 1


class TestMachineIntegration:
    def test_dead_store_program_replays_and_reports_count(self):
        machine = make_machine(seed=4, noise=NoiseModel())
        machine.load(Assembler(machine.isa).assemble_text("""
        SMIS S2, {2}
        QWAIT 10000
        X90 S2
        MEASZ S2
        QWAIT 50
        FMR R1, Q2
        LDI R2, 16
        ST R1, R2(0)
        STOP
        """))
        assert machine.replay_unsupported_reasons() == []
        machine.run(100)
        stats = machine.engine_stats
        assert machine.last_run_engine == "replay"
        assert stats.dead_stores == 1
        assert stats.replay_shots > stats.interpreter_shots
        # Documented relaxation: replayed shots skip the dead store, so
        # the memory holds the last *growth* shot's deposit — which is
        # still one of the measurement results this program stores.
        assert machine.memory.load(16) in (0, 1)

    def test_live_load_program_reports_reason_and_falls_back(self):
        """A load *above* the store to its address observes the
        previous shot's value — the remaining hard blocker."""
        machine = make_machine()
        machine.load(Assembler(machine.isa).assemble_text("""
        LDI R0, 7
        LDI R1, 16
        LD R2, R1(0)
        ST R0, R1(0)
        STOP
        """))
        reasons = machine.replay_unsupported_reasons()
        assert len(reasons) == 1
        assert "ST" in reasons[0] and "live" in reasons[0]
        machine.run(2)
        assert machine.last_run_engine == "interpreter"
        assert machine.engine_stats.fallback_reason == reasons[0]
        # The interpreter path genuinely executes the store.
        assert machine.memory.load(16) == 7
