"""Unit tests for the dead-store dataflow pass (uarch/dataflow.py).

The pass must prove a store dead exactly when no load can alias it —
this shot or any later one (data memory persists across shots) — and
must stay conservative whenever an address is not statically known.
Its verdict drives the replay whitelist: dead-store programs ride the
fast path, ST-then-LD programs fall back with the new reason strings.
"""

import numpy as np
import pytest

from repro.core import Assembler, two_qubit_instantiation
from repro.quantum import NoiseModel, QuantumPlant
from repro.uarch import QuMAv2, analyze_data_memory


def make_machine(seed=0, noise=None):
    isa = two_qubit_instantiation()
    plant = QuantumPlant(isa.topology,
                         noise=noise or NoiseModel.noiseless(),
                         rng=np.random.default_rng(seed))
    return QuMAv2(isa, plant)


def analyze(text):
    machine = make_machine()
    machine.load(Assembler(machine.isa).assemble_text(text))
    return analyze_data_memory(machine.instruction_memory())


class TestStoreLiveness:
    def test_no_memory_traffic_is_safe(self):
        report = analyze("""
        SMIS S2, {2}
        X90 S2
        MEASZ S2
        QWAIT 50
        STOP
        """)
        assert report.replay_safe
        assert report.store_count == 0
        assert report.dead_store_count == 0

    def test_store_without_any_load_is_dead(self):
        report = analyze("""
        LDI R0, 7
        LDI R1, 16
        ST R0, R1(0)
        ST R0, R1(4)
        STOP
        """)
        assert report.replay_safe
        assert report.store_count == 2
        assert report.dead_store_count == 2

    def test_store_then_load_same_address_is_live(self):
        report = analyze("""
        LDI R0, 7
        LDI R1, 16
        ST R0, R1(0)
        LD R2, R1(0)
        STOP
        """)
        assert not report.replay_safe
        assert report.dead_store_count == 0
        assert any("live" in reason for reason in report.live_reasons)

    def test_load_above_store_same_address_is_still_live(self):
        """Data memory persists across shots: a load textually above
        the store observes the *previous* shot's store."""
        report = analyze("""
        LDI R1, 16
        LD R2, R1(0)
        LDI R0, 7
        ST R0, R1(0)
        STOP
        """)
        assert not report.replay_safe

    def test_disjoint_constant_addresses_are_safe(self):
        report = analyze("""
        LDI R0, 7
        LDI R1, 16
        LDI R2, 64
        ST R0, R1(0)
        LD R3, R2(0)
        STOP
        """)
        assert report.replay_safe
        assert report.dead_store_count == 1
        assert report.load_count == 1

    def test_unknown_store_address_without_loads_is_safe(self):
        """The store address comes from memory (not statically known),
        but with no loads anywhere nothing can observe it."""
        report = analyze("""
        LDI R0, 8
        ST R0, R0(0)
        STOP
        """)
        assert report.replay_safe

    def test_unknown_store_address_with_a_load_is_live(self):
        report = analyze("""
        LDI R0, 8
        LDI R1, 16
        LD R2, R1(0)
        ST R0, R2(0)
        STOP
        """)
        assert not report.replay_safe
        assert any("unknown" in reason for reason in report.live_reasons)

    def test_unknown_load_address_with_a_store_is_live(self):
        report = analyze("""
        LDI R0, 8
        LDI R1, 16
        ST R0, R1(0)
        LD R2, R1(0)
        LD R3, R2(0)
        STOP
        """)
        assert not report.replay_safe

    def test_constants_fold_through_the_alu(self):
        """ADD of two known constants keeps the address known: the
        store lands at 32, disjoint from the load at 16."""
        report = analyze("""
        LDI R0, 7
        LDI R1, 16
        ADD R2, R1, R1
        ST R0, R2(0)
        LD R3, R1(0)
        STOP
        """)
        assert report.replay_safe
        assert report.dead_store_count == 1

    def test_branch_join_with_disagreeing_constants_is_conservative(self):
        """R2 is 8 on one path and 16 on the other: the join loses the
        constant, and with a load present the store must count live."""
        report = analyze("""
        LDI R0, 1
        LDI R1, 0
        CMP R1, R0
        BR EQ, other
        LDI R2, 8
        BR ALWAYS, join
        other:
        LDI R2, 16
        join:
        ST R0, R2(0)
        LD R3, R1(4)
        STOP
        """)
        assert not report.replay_safe

    def test_branch_join_with_agreeing_constants_stays_known(self):
        report = analyze("""
        LDI R0, 1
        LDI R1, 0
        CMP R1, R0
        BR EQ, other
        LDI R2, 64
        BR ALWAYS, join
        other:
        LDI R2, 64
        join:
        ST R0, R2(0)
        LD R3, R1(4)
        STOP
        """)
        assert report.replay_safe
        assert report.dead_store_count == 1

    def test_unreachable_memory_traffic_is_ignored(self):
        report = analyze("""
        LDI R0, 16
        BR ALWAYS, end
        ST R0, R0(0)
        LD R1, R0(0)
        end:
        STOP
        """)
        assert report.replay_safe
        assert report.store_count == 0
        assert report.load_count == 0

    def test_loop_reaches_a_fixpoint(self):
        """A counted loop storing each iteration: the loop-carried ADD
        drives the address to unknown at the join, but with no loads
        the stores stay dead — and the analysis terminates."""
        report = analyze("""
        LDI R0, 4
        LDI R1, 1
        LDI R2, 16
        loop:
        ST R1, R2(0)
        ADD R2, R2, R0
        SUB R0, R0, R1
        CMP R0, R1
        BR GT, loop
        STOP
        """)
        assert report.replay_safe
        assert report.store_count == 1


class TestMachineIntegration:
    def test_dead_store_program_replays_and_reports_count(self):
        machine = make_machine(seed=4, noise=NoiseModel())
        machine.load(Assembler(machine.isa).assemble_text("""
        SMIS S2, {2}
        QWAIT 10000
        X90 S2
        MEASZ S2
        QWAIT 50
        FMR R1, Q2
        LDI R2, 16
        ST R1, R2(0)
        STOP
        """))
        assert machine.replay_unsupported_reasons() == []
        machine.run(100)
        stats = machine.engine_stats
        assert machine.last_run_engine == "replay"
        assert stats.dead_stores == 1
        assert stats.replay_shots > stats.interpreter_shots
        # Documented relaxation: replayed shots skip the dead store, so
        # the memory holds the last *growth* shot's deposit — which is
        # still one of the measurement results this program stores.
        assert machine.memory.load(16) in (0, 1)

    def test_live_store_program_reports_reason_and_falls_back(self):
        machine = make_machine()
        machine.load(Assembler(machine.isa).assemble_text("""
        LDI R0, 7
        LDI R1, 16
        ST R0, R1(0)
        LD R2, R1(0)
        STOP
        """))
        reasons = machine.replay_unsupported_reasons()
        assert len(reasons) == 1
        assert "ST" in reasons[0] and "live" in reasons[0]
        machine.run(2)
        assert machine.last_run_engine == "interpreter"
        assert machine.engine_stats.fallback_reason == reasons[0]
        # The interpreter path genuinely executes the store.
        assert machine.memory.load(16) == 7
