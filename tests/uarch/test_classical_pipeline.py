"""Tests of the classical pipeline: every auxiliary instruction of
Table 1 executed on the machine."""

import numpy as np
import pytest

from repro.core import Assembler, two_qubit_instantiation
from repro.core.errors import RuntimeFault
from repro.core.registers import to_unsigned32
from repro.quantum import NoiseModel, QuantumPlant
from repro.uarch import QuMAv2


@pytest.fixture()
def machine():
    isa = two_qubit_instantiation()
    plant = QuantumPlant(isa.topology, noise=NoiseModel.noiseless(),
                         rng=np.random.default_rng(0))
    return QuMAv2(isa, plant)


def run(machine, text, shots=1):
    isa = machine.isa
    assembled = Assembler(isa).assemble_text(text)
    machine.load(assembled)
    trace = None
    for _ in range(shots):
        trace = machine.run_shot()
    return trace


class TestDataTransfer:
    def test_ldi_positive(self, machine):
        run(machine, "LDI R0, 42\nSTOP")
        assert machine.gprs.read(0) == 42

    def test_ldi_negative_sign_extends(self, machine):
        run(machine, "LDI R1, -1\nSTOP")
        assert machine.gprs.read(1) == 0xFFFFFFFF
        assert machine.gprs.read_signed(1) == -1

    def test_ldui_concatenation(self, machine):
        # Rd = Imm[14..0] :: Rs[16..0] (Table 1).
        run(machine, "LDI R2, 3\nLDUI R3, 5, R2\nSTOP")
        assert machine.gprs.read(3) == (5 << 17) | 3

    def test_ldui_builds_large_constant(self, machine):
        # Standard idiom: LDI low bits, LDUI the high bits.
        value = 0x12345678
        low = value & 0x1FFFF
        high = value >> 17
        run(machine, f"LDI R0, {low}\nLDUI R0, {high}, R0\nSTOP")
        assert machine.gprs.read(0) == value

    def test_ld_st_roundtrip(self, machine):
        run(machine, """
        LDI R0, 1234
        LDI R1, 16
        ST R0, R1(4)
        LD R2, R1(4)
        STOP
        """)
        assert machine.gprs.read(2) == 1234
        assert machine.memory.load(20) == 1234

    def test_ld_default_zero(self, machine):
        run(machine, "LDI R0, 64\nLD R1, R0(0)\nSTOP")
        assert machine.gprs.read(1) == 0

    def test_fbr_fetches_flag(self, machine):
        run(machine, """
        LDI R0, 5
        LDI R1, 5
        CMP R0, R1
        FBR EQ, R2
        FBR NE, R3
        STOP
        """)
        assert machine.gprs.read(2) == 1
        assert machine.gprs.read(3) == 0


class TestLogicalArithmetic:
    def test_and_or_xor(self, machine):
        run(machine, """
        LDI R0, 12
        LDI R1, 10
        AND R2, R0, R1
        OR R3, R0, R1
        XOR R4, R0, R1
        STOP
        """)
        assert machine.gprs.read(2) == 12 & 10
        assert machine.gprs.read(3) == 12 | 10
        assert machine.gprs.read(4) == 12 ^ 10

    def test_not(self, machine):
        run(machine, "LDI R0, 0\nNOT R1, R0\nSTOP")
        assert machine.gprs.read(1) == 0xFFFFFFFF

    def test_add_sub(self, machine):
        run(machine, """
        LDI R0, 100
        LDI R1, 58
        ADD R2, R0, R1
        SUB R3, R0, R1
        SUB R4, R1, R0
        STOP
        """)
        assert machine.gprs.read(2) == 158
        assert machine.gprs.read(3) == 42
        assert machine.gprs.read_signed(4) == -42

    def test_add_wraps_32_bits(self, machine):
        run(machine, """
        LDI R0, -1
        LDI R1, 1
        ADD R2, R0, R1
        STOP
        """)
        assert machine.gprs.read(2) == 0


class TestControlFlow:
    def test_taken_branch_skips(self, machine):
        run(machine, """
        LDI R0, 1
        BR ALWAYS, skip
        LDI R0, 99
        skip:
        STOP
        """)
        assert machine.gprs.read(0) == 1

    def test_not_taken_branch_falls_through(self, machine):
        run(machine, """
        LDI R0, 1
        BR NEVER, skip
        LDI R0, 99
        skip:
        STOP
        """)
        assert machine.gprs.read(0) == 99

    def test_backward_branch_loop(self, machine):
        # Count down from 5 using a loop.
        trace = run(machine, """
        LDI R0, 5
        LDI R1, 1
        LDI R2, 0
        loop:
        SUB R0, R0, R1
        ADD R2, R2, R1
        CMP R0, R2
        BR GT, loop
        STOP
        """)
        # Loop runs until R0 <= R2: R0=5-k, R2=k, stop at k=3 (2 < 3).
        assert machine.gprs.read(2) == 3
        assert trace.stop_reached

    def test_conditional_branch_on_comparison(self, machine):
        run(machine, """
        LDI R0, -5
        LDI R1, 3
        CMP R0, R1
        BR LT, signed_path
        LDI R5, 1
        BR ALWAYS, done
        signed_path:
        LDI R5, 2
        done:
        STOP
        """)
        assert machine.gprs.read(5) == 2  # -5 < 3 signed

    def test_unsigned_comparison_path(self, machine):
        run(machine, """
        LDI R0, -5
        LDI R1, 3
        CMP R0, R1
        BR LTU, unsigned_small
        LDI R5, 1
        BR ALWAYS, done
        unsigned_small:
        LDI R5, 2
        done:
        STOP
        """)
        assert machine.gprs.read(5) == 1  # 0xFFFFFFFB > 3 unsigned

    def test_branch_penalty_costs_time(self, machine):
        taken = run(machine, "BR ALWAYS, next\nnext:\nSTOP")
        taken_time = taken.classical_time_ns
        machine2_isa = machine.isa
        not_taken = run(machine, "BR NEVER, 1\nSTOP")
        assert taken_time > not_taken.classical_time_ns

    def test_fell_off_end_is_implicit_stop(self, machine):
        trace = run(machine, "LDI R0, 7")
        assert machine.gprs.read(0) == 7
        assert not trace.stop_reached

    def test_runaway_program_detected(self, machine):
        with pytest.raises(RuntimeFault):
            run_text = """
            loop:
            BR ALWAYS, loop
            """
            assembled = Assembler(machine.isa).assemble_text(run_text)
            machine.load(assembled)
            machine.run_shot(max_instructions=1000)

    def test_no_program_loaded(self, machine):
        with pytest.raises(RuntimeFault):
            machine.run_shot()


class TestShotIsolation:
    def test_gprs_reset_between_shots(self, machine):
        run(machine, "ADD R0, R0, R0\nLDI R1, 1\nADD R0, R0, R1\nSTOP",
            shots=3)
        # R0 = 0*2 + 1 every shot; no accumulation across shots.
        assert machine.gprs.read(0) == 1

    def test_memory_persists_between_shots(self, machine):
        run(machine, """
        LDI R0, 0
        LD R1, R0(0)
        LDI R2, 1
        ADD R1, R1, R2
        ST R1, R0(0)
        STOP
        """, shots=4)
        assert machine.memory.load(0) == 4

    def test_instruction_count_recorded(self, machine):
        trace = run(machine, "NOP\nNOP\nSTOP")
        assert trace.instructions_executed == 3
