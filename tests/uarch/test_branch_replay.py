"""Branch-resolved replay cross-checks.

The timeline-segment tree must be *observationally equivalent* to the
interpreter on feedback programs: along every outcome path the
timing-domain records are bit-identical, and the sampled outcome
distributions are statistically indistinguishable.  Mock-result
programs replay through cursor-keyed tree roots and dead stores are
whitelisted by the dataflow pass; the remaining hard blockers (live
``ST`` stores, untranslatable operations) must report *all* their
reasons and fall back transparently; non-saturating outcome spaces
must degrade gracefully to interpreter shots.
"""

import numpy as np
import pytest

from repro.core import Assembler, seven_qubit_instantiation, \
    two_qubit_instantiation
from repro.experiments.cfc import CFC_TWO_ROUND_PROGRAM as CFC_TWO_ROUND
from repro.experiments.reset import FIG4_PROGRAM as ACTIVE_RESET
from repro.quantum import NoiseModel, QuantumPlant
from repro.uarch import (
    MeasurementSample,
    QuMAv2,
    ShotTrace,
    TimelineTree,
)


def make_machine(isa=None, noise=None, seed=0):
    isa = isa or two_qubit_instantiation()
    plant = QuantumPlant(isa.topology,
                         noise=noise or NoiseModel.noiseless(),
                         rng=np.random.default_rng(seed))
    return QuMAv2(isa, plant)


def load(machine, text):
    machine.load(Assembler(machine.isa).assemble_text(text))


def reported_path(trace):
    return tuple(r.reported_result for r in trace.results)


def assert_timing_identical(trace_a, trace_b):
    """Deterministic-domain records must match bit for bit."""
    assert trace_a.triggers == trace_b.triggers
    assert trace_a.slips == trace_b.slips
    assert trace_a.instructions_executed == trace_b.instructions_executed
    assert trace_a.classical_time_ns == trace_b.classical_time_ns
    assert trace_a.stop_reached == trace_b.stop_reached
    assert [(r.qubit, r.measure_start_ns, r.arrival_ns)
            for r in trace_a.results] == \
        [(r.qubit, r.measure_start_ns, r.arrival_ns)
         for r in trace_b.results]


class TestPerPathTimingBitIdentity:
    """For every outcome path the replay engine serves, an interpreter
    shot forced down the same path must produce bit-identical timing."""

    @pytest.mark.parametrize("text,paths_expected", [
        (ACTIVE_RESET, 4),
        (CFC_TWO_ROUND, 4),
    ], ids=["active-reset", "cfc-two-round"])
    def test_every_replayed_path_matches_forced_interpreter(
            self, text, paths_expected):
        replay = make_machine(noise=NoiseModel(), seed=17)
        load(replay, text)
        traces = replay.run(400)
        assert replay.last_run_engine == "replay"
        by_path = {}
        for trace in traces:
            by_path.setdefault(trace.outcome_path(), trace)
        # The noise model keeps every reported branch reachable; the
        # replay run must have explored the full conditional space.
        assert len({reported_path(t) for t in traces}) >= paths_expected

        for path, replay_trace in by_path.items():
            interpreter = make_machine(noise=NoiseModel(), seed=99)
            load(interpreter, text)
            interpreter.measurement_unit.force_results(list(path))
            interp_trace = interpreter.run_shot()
            assert interp_trace.outcome_path() == path
            assert_timing_identical(interp_trace, replay_trace)

    def test_timing_depends_only_on_reported_bits(self):
        """Two forced paths with the same reported bits but different
        raw bits share every timing-domain record (the raw outcome
        only steers the plant state)."""
        machine_a = make_machine(noise=NoiseModel(), seed=1)
        load(machine_a, ACTIVE_RESET)
        machine_a.measurement_unit.force_results([(1, 1), (0, 0)])
        trace_a = machine_a.run_shot()

        machine_b = make_machine(noise=NoiseModel(), seed=2)
        load(machine_b, ACTIVE_RESET)
        machine_b.measurement_unit.force_results([(0, 1), (0, 0)])
        trace_b = machine_b.run_shot()

        assert_timing_identical(trace_a, trace_b)
        assert trace_a.results[0].raw_result == 1
        assert trace_b.results[0].raw_result == 0


class TestStatisticalEquivalence:
    def test_active_reset_distribution_matches_interpreter(self):
        shots = 1500
        interpreter = make_machine(noise=NoiseModel(), seed=23)
        load(interpreter, ACTIVE_RESET)
        interp = interpreter.run_counts(shots, use_replay=False)

        replay = make_machine(noise=NoiseModel(), seed=24)
        load(replay, ACTIVE_RESET)
        rep = replay.run_counts(shots)
        assert replay.last_run_engine == "replay"
        assert rep.excited_fraction(2) == pytest.approx(
            interp.excited_fraction(2), abs=0.05)

    def test_surface_code_chi_squared_equivalence(self):
        """Same seed-family, both engines, 2-round surface-code cycle:
        a chi-squared test on the joint final-outcome histograms must
        not reject equality."""
        from scipy.stats import chi2_contingency

        from repro.experiments.runner import ExperimentSetup
        from repro.workloads.surface_code import surface_code_circuit

        shots = 150
        circuit = surface_code_circuit(rounds=2)

        def joint_counts(seed, use_replay):
            setup = ExperimentSetup.create(
                isa=seven_qubit_instantiation(), noise=NoiseModel(),
                seed=seed)
            assembled = setup.compile_circuit(circuit)
            setup.machine.load(assembled)
            counts = setup.machine.run_counts(shots,
                                              use_replay=use_replay)
            engine = setup.machine.last_run_engine
            return counts.joint, engine

        interp_joint, interp_engine = joint_counts(41, use_replay=False)
        replay_joint, replay_engine = joint_counts(42, use_replay=True)
        assert interp_engine == "interpreter"
        assert replay_engine == "replay"

        keys = sorted(set(interp_joint) | set(replay_joint))
        table = np.array([[interp_joint.get(k, 0) for k in keys],
                          [replay_joint.get(k, 0) for k in keys]])
        # Pool sparse outcome bins so the chi-squared assumptions hold.
        totals = table.sum(axis=0)
        dense = table[:, totals >= 10]
        pooled = table[:, totals < 10].sum(axis=1, keepdims=True)
        if pooled.sum() > 0:
            dense = np.hstack([dense, pooled])
        _, p_value, _, _ = chi2_contingency(dense)
        assert p_value > 1e-3, \
            f"engines statistically distinguishable (p={p_value})"


class TestTreeSaturation:
    def test_active_reset_tree_saturates(self):
        machine = make_machine(noise=NoiseModel(), seed=11)
        load(machine, ACTIVE_RESET)
        machine.run(500)
        stats = machine.engine_stats
        assert stats.engine == "replay"
        assert stats.shots_total == 500
        # Two measurements, <= 4 (raw, reported) pairs each: the tree
        # saturates after at most 16 growth shots.
        assert stats.interpreter_shots <= 16
        assert stats.replay_shots >= 484
        assert stats.segment_cache_hits == stats.replay_shots
        assert stats.segment_cache_misses == stats.interpreter_shots
        assert stats.tree_paths == stats.interpreter_shots
        assert stats.growth_stopped_reason is None

    def test_noiseless_reset_saturates_after_two_probes(self):
        machine = make_machine(seed=11)  # noiseless: raw == reported
        load(machine, ACTIVE_RESET)
        machine.run(100)
        stats = machine.engine_stats
        assert stats.interpreter_shots <= 4
        assert stats.replay_shots >= 96

    def test_growth_caps_degrade_to_interpreter(self):
        """A program whose outcome space exceeds the tree caps keeps
        running — every shot through the interpreter — and reports why
        growth stopped."""
        plant = QuantumPlant(two_qubit_instantiation().topology,
                             noise=NoiseModel(),
                             rng=np.random.default_rng(3))
        tree = TimelineTree(plant, max_depth=1)
        samples = [MeasurementSample(qubit=2, start_ns=0.0, p_one=0.5),
                   MeasurementSample(qubit=2, start_ns=500.0, p_one=0.5)]
        trace = ShotTrace()  # only the length of .results matters here
        assert not tree.grow(samples, trace)
        assert "cap" in tree.growth_stopped_reason
        # The walk still misses cleanly (interpreter fallback per shot)
        # and refuses to grow further.
        sampled, prefix = tree.sample_shot()
        assert sampled is None and prefix == []
        assert not tree.grow(samples, trace)

    def test_all_growth_run_reports_interpreter_split(self):
        """A run the tree can never cache (every outcome path exceeds
        the depth cap, so each shot is a growth shot) must not be
        labeled "replay": the final engine label has to agree with the
        EngineStats split, and the reason says why."""
        machine = make_machine(seed=8)
        load(machine, """
        SMIS S2, {2}
        LDI R0, 70
        LDI R1, 1
        QWAIT 10000
        loop:
        MEASZ S2
        QWAIT 50
        SUB R0, R0, R1
        CMP R0, R1
        BR GE, loop
        QWAIT 50
        STOP
        """)
        assert machine.replay_unsupported_reasons() == []
        machine.run(3)
        stats = machine.engine_stats
        assert stats.interpreter_shots == 3
        assert stats.replay_shots == 0
        assert stats.engine == "interpreter"
        assert machine.last_run_engine == "interpreter"
        assert stats.fallback_reason == machine.replay_fallback_reason
        assert "growth" in machine.replay_fallback_reason
        assert "cap" in (stats.growth_stopped_reason or "")

    def test_determinism_violation_poisons_growth(self):
        plant = QuantumPlant(two_qubit_instantiation().topology,
                             noise=NoiseModel(),
                             rng=np.random.default_rng(3))
        tree = TimelineTree(plant)
        from repro.uarch import ResultRecord
        record = ResultRecord(qubit=2, raw_result=0, reported_result=0,
                              measure_start_ns=0.0, arrival_ns=100.0)
        trace = ShotTrace(results=[record])
        sample = MeasurementSample(qubit=2, start_ns=0.0, p_one=0.5)
        assert tree.grow([sample], trace)
        # Same (empty) outcome history, different first measurement:
        # only possible when timing depends on non-outcome state.
        other = MeasurementSample(qubit=0, start_ns=0.0, p_one=0.5)
        other_trace = ShotTrace(results=[ResultRecord(
            qubit=0, raw_result=0, reported_result=0,
            measure_start_ns=0.0, arrival_ns=100.0)])
        assert not tree.grow([other], other_trace)
        assert "determinism" in tree.growth_stopped_reason


class TestHardBlockerReporting:
    def test_live_load_blocks_replay(self):
        """A load above the only store to its address observes the
        previous shot's value (data memory persists) and forces the
        interpreter — the same pair in kill order would replay."""
        machine = make_machine()
        load(machine, """
        SMIS S2, {2}
        LDI R0, 7
        LDI R1, 0
        LD R2, R1(0)
        ST R0, R1(0)
        X90 S2
        MEASZ S2
        STOP
        """)
        reasons = machine.replay_unsupported_reasons()
        assert len(reasons) == 1
        assert "ST" in reasons[0] and "data memory" in reasons[0]
        assert "live" in reasons[0]
        machine.run(3)
        assert machine.last_run_engine == "interpreter"
        assert machine.engine_stats.interpreter_shots == 3

    def test_all_blocking_reasons_reported(self):
        """A program with several blockers reports every one of them,
        not just the first — and injected mocks add none (they replay
        through cursor-keyed roots now)."""
        machine = make_machine()
        load(machine, """
        SMIS S2, {2}
        LDI R0, 8
        LDI R1, 16
        LD R4, R1(0)
        ST R0, R1(0)
        LD R5, R4(0)
        X90 S2
        MEASZ S2
        STOP
        """)
        machine.measurement_unit.inject_mock_results(2, [1, 0])
        reasons = machine.replay_unsupported_reasons()
        assert len(reasons) == 2
        assert any("unknown" in reason for reason in reasons)
        assert any("live" in reason for reason in reasons)
        assert not any("mock" in reason for reason in reasons)
        machine.run(1)
        assert "unknown" in machine.replay_fallback_reason
        assert "live" in machine.replay_fallback_reason

    def test_dead_store_and_mocks_combined_replay(self):
        """The two former hard blockers together — a host-readout
        store plus an injected mock queue — now both ride replay."""
        machine = make_machine(seed=6)
        load(machine, """
        SMIS S2, {2}
        QWAIT 10000
        X90 S2
        MEASZ S2
        QWAIT 50
        FMR R1, Q2
        LDI R2, 32
        ST R1, R2(0)
        STOP
        """)
        machine.measurement_unit.inject_mock_results(2, [1, 0, 1, 0])
        assert machine.replay_unsupported_reasons() == []
        traces = machine.run(4)
        assert machine.last_run_engine == "replay"
        assert [t.last_result(2) for t in traces] == [1, 0, 1, 0]
        assert machine.engine_stats.dead_stores == 1


class TestForcedResults:
    def test_forced_pair_overrides_sampling_and_collapses_plant(self):
        machine = make_machine(noise=NoiseModel(), seed=0)
        load(machine, ACTIVE_RESET)
        machine.measurement_unit.force_results([(1, 0)])
        trace = machine.run_shot()
        assert trace.results[0].raw_result == 1
        assert trace.results[0].reported_result == 0
        # reported 0 -> the conditional C_X must have been cancelled.
        cx = [t for t in trace.triggers if t.name == "C_X"]
        assert cx and not cx[0].executed

    def test_forced_queue_is_cleared_between_runs(self):
        machine = make_machine(seed=0)
        load(machine, ACTIVE_RESET)
        machine.measurement_unit.force_results([(1, 1)])
        machine.measurement_unit.clear_forced_results()
        trace = machine.run_shot()  # noiseless: free sampling again
        assert trace.results[0].raw_result in (0, 1)

    def test_multi_shot_run_discards_stale_forced_queue(self):
        """A forced queue left over from a run_shot() drive must not
        bias (or mis-align the growth prefixes of) a multi-shot run."""
        machine = make_machine(noise=NoiseModel(), seed=0)
        load(machine, ACTIVE_RESET)
        machine.measurement_unit.force_results([(1, 1)] * 200)
        traces = machine.run(100)
        assert machine.last_run_engine == "replay"
        raws = {r.raw_result for t in traces for r in t.results}
        assert raws == {0, 1}  # stale queue would pin every raw to 1


class TestStatsSurfacing:
    def test_experiment_setup_exposes_engine_stats(self):
        from repro.experiments.reset import run_active_reset_experiment
        result = run_active_reset_experiment(shots=200, seed=5)
        stats = result.engine_stats
        assert stats.engine == "replay"
        assert stats.shots_total == 200
        assert stats.replay_shots > stats.interpreter_shots

    def test_cfc_verification_rides_replay(self):
        """Mock-result CFC verification is no longer a fallback: the
        program measures once per shot, so the upcoming-value window
        is a single bit and the whole alternating queue maps onto two
        roots; after one growth shot per mock value the rounds are
        pure tree walks."""
        from repro.experiments.cfc import run_cfc_verification
        result = run_cfc_verification(rounds=8)
        assert result.alternates
        stats = result.engine_stats
        assert stats.engine == "replay"
        assert stats.fallback_reason is None
        assert stats.shots_total == 8
        assert stats.tree_roots == 2         # one per mock value
        assert stats.interpreter_shots == 2  # one growth shot per root
        assert stats.replay_shots == 6
        assert stats.mock_results_replayed == 6

    def test_mock_cfc_long_queue_shares_clamped_root(self):
        """A long alternating mock queue (the throughput scenario):
        cursor states with >= max_depth results remaining share one
        clamped root, so most shots are pure tree walks — and the
        queue still drains in exact order (the X/Y alternation holds
        across cached and growth shots alike)."""
        from repro.experiments.cfc import FIG5_PROGRAM
        machine = make_machine(seed=9)
        rounds = 200
        machine.measurement_unit.inject_mock_results(
            2, [i % 2 for i in range(rounds)])
        load(machine, FIG5_PROGRAM)
        applied = []
        for trace in machine.run_iter(rounds):
            applied.extend(r.name for r in trace.triggers
                           if r.qubits == (0,) and r.executed)
        assert machine.last_run_engine == "replay"
        assert applied == ["X", "Y"] * (rounds // 2)
        stats = machine.engine_stats
        assert stats.replay_shots > stats.interpreter_shots
        assert stats.mock_results_replayed == stats.replay_shots
        assert not machine.measurement_unit.has_mock_results(2)

    def test_surface_code_reports_replay_stats(self):
        from repro.experiments.surface_code import (
            run_surface_code_experiment,
        )
        result = run_surface_code_experiment(rounds=2, shots=60)
        stats = result.engine_stats
        assert stats.engine == "replay"
        assert stats.shots_total == 60
        assert stats.replay_shots > 0


class TestTraceSplice:
    def test_with_sampled_results_shares_timing_and_swaps_outcomes(self):
        machine = make_machine(noise=NoiseModel(), seed=6)
        load(machine, ACTIVE_RESET)
        template = machine.run_shot()
        spliced = template.with_sampled_results(
            [(1, 0), (0, 1)])
        assert_timing_identical(template, spliced)
        assert [(r.raw_result, r.reported_result)
                for r in spliced.results] == [(1, 0), (0, 1)]
        assert spliced.triggers[0] is template.triggers[0]

    def test_with_sampled_results_rejects_length_mismatch(self):
        machine = make_machine(noise=NoiseModel(), seed=6)
        load(machine, ACTIVE_RESET)
        template = machine.run_shot()
        with pytest.raises(ValueError):
            template.with_sampled_results([(0, 0)])
