"""Cross-run replay-cache regression tests.

The machine retains saturated timeline trees keyed by (binary words,
noise model, uarch config) so repeated sweeps over one binary reuse the
tree across ``run()`` calls.  The dangerous failure mode is a *stale*
tree: reusing cached probabilities/readout after the noise model or
configuration changed would silently corrupt the emitted distribution —
these tests pin the invalidation behaviour.  The file also covers the
mid-stream :class:`EngineStats` snapshot used by long sweeps.
"""

import numpy as np
import pytest

from repro.core import Assembler, two_qubit_instantiation
from repro.experiments.reset import FIG4_PROGRAM as ACTIVE_RESET
from repro.quantum import NoiseModel, QuantumPlant
from repro.uarch import QuMAv2, slip_config


def make_machine(noise=None, seed=0, config=None):
    isa = two_qubit_instantiation()
    plant = QuantumPlant(isa.topology,
                         noise=noise or NoiseModel.noiseless(),
                         rng=np.random.default_rng(seed))
    return QuMAv2(isa, plant, config=config)


def load(machine, text):
    machine.load(Assembler(machine.isa).assemble_text(text))


class TestCrossRunTreeReuse:
    def test_second_run_reuses_the_saturated_tree(self):
        """Noiseless active reset saturates its tree in a handful of
        shots; a second run over the same binary must be pure replay —
        zero interpreter shots, segment hits carried across run()."""
        machine = make_machine(seed=3)
        load(machine, ACTIVE_RESET)
        machine.run(50)
        first = machine.engine_stats
        assert first.engine == "replay"
        assert not first.tree_reused
        assert first.interpreter_shots > 0

        machine.run(50)
        second = machine.engine_stats
        assert second.tree_reused
        assert second.interpreter_shots == 0
        assert second.replay_shots == 50
        assert second.segment_cache_hits == 50
        assert second.tree_paths == first.tree_paths

    def test_reloading_the_same_binary_still_reuses(self):
        machine = make_machine(seed=3)
        assembled = Assembler(machine.isa).assemble_text(ACTIVE_RESET)
        machine.load(assembled)
        machine.run(40)
        machine.load(assembled)  # e.g. a sweep re-loading per point
        machine.run(40)
        assert machine.engine_stats.tree_reused
        assert machine.engine_stats.interpreter_shots == 0

    def test_noise_model_change_invalidates(self):
        """The stale-cache guard: after swapping in a noiseless model,
        a reused tree would keep sampling the old readout-error rates.
        The key must miss, the tree regrow, and noiseless active reset
        become perfect."""
        machine = make_machine(noise=NoiseModel(), seed=7)
        load(machine, ACTIVE_RESET)
        machine.run(200)
        assert machine.engine_stats.engine == "replay"

        machine.plant.noise = NoiseModel.noiseless()
        traces = machine.run(100)
        stats = machine.engine_stats
        assert not stats.tree_reused
        assert stats.interpreter_shots > 0  # the tree was regrown
        # Noiseless reset is exact; a stale tree would keep emitting
        # ~9.5% readout flips on the final measurement.
        assert all(trace.last_result(2) == 0 for trace in traces)

    def test_config_change_invalidates(self):
        machine = make_machine(seed=3)
        load(machine, ACTIVE_RESET)
        machine.run(30)
        machine.config = slip_config(machine.config)
        machine.run(30)
        assert not machine.engine_stats.tree_reused

    def test_different_binary_does_not_reuse(self):
        machine = make_machine(seed=3)
        load(machine, ACTIVE_RESET)
        machine.run(30)
        load(machine, """
        SMIS S2, {2}
        QWAIT 10000
        X90 S2
        MEASZ S2
        QWAIT 50
        STOP
        """)
        machine.run(30)
        assert not machine.engine_stats.tree_reused

    def test_interpreter_runs_leave_the_cache_intact(self):
        machine = make_machine(seed=3)
        load(machine, ACTIVE_RESET)
        machine.run(40)
        machine.run(10, use_replay=False)
        assert machine.last_run_engine == "interpreter"
        machine.run(40)
        assert machine.engine_stats.tree_reused
        assert machine.engine_stats.interpreter_shots == 0

    def test_clear_replay_cache_forces_regrowth(self):
        machine = make_machine(seed=3)
        load(machine, ACTIVE_RESET)
        machine.run(40)
        machine.clear_replay_cache()
        machine.run(40)
        stats = machine.engine_stats
        assert not stats.tree_reused
        assert stats.interpreter_shots > 0

    def test_clear_replay_cache_also_drops_dataflow_reports(self):
        """The explicit hatch's contract is *no derived state
        survives*: the per-machine dataflow-report LRU (and the live
        report of the loaded binary) must clear alongside the tree
        cache, so a cleared machine re-derives everything from the
        binary words."""
        machine = make_machine(seed=3)
        load(machine, ACTIVE_RESET)
        report = machine.data_memory_report()
        assert machine._dataflow_cache            # LRU holds the report
        assert machine._data_memory_report is report

        machine.clear_replay_cache()
        assert not machine._dataflow_cache
        assert machine._data_memory_report is None
        # The next request recomputes (a fresh object, same verdict).
        fresh = machine.data_memory_report()
        assert fresh is not report
        assert fresh.cross_run_cacheable == report.cross_run_cacheable

    def test_mock_reinjection_lands_on_the_cached_roots(self):
        """Roots key on the upcoming mock-value window, not cursor
        position: a later injection re-using values already seen lands
        back on the grown roots, so a mock sweep re-injecting per
        run() pays growth only once — and the drained sequence stays
        exact."""
        machine = make_machine(seed=5)
        load(machine, """
        SMIS S2, {2}
        QWAIT 10000
        X90 S2
        MEASZ S2
        QWAIT 50
        STOP
        """)
        machine.measurement_unit.inject_mock_results(2, [1, 0])
        first = machine.run(2)
        assert [t.last_result(2) for t in first] == [1, 0]
        roots_after_first = machine.engine_stats.tree_roots
        assert machine.engine_stats.interpreter_shots == 2

        machine.measurement_unit.inject_mock_results(2, [0, 1])
        second = machine.run(2)
        assert [t.last_result(2) for t in second] == [0, 1]
        stats = machine.engine_stats
        assert stats.tree_reused
        assert stats.tree_roots == roots_after_first  # same value windows
        assert stats.interpreter_shots == 0           # pure replay now
        assert stats.mock_results_replayed == 2

    def test_load_bearing_program_is_never_cached_across_runs(self):
        """Data memory is the host communication channel: a program
        whose LD steers control flow must re-grow its tree every run(),
        because the host may rewrite the loaded address in between —
        state the (binary, noise, config) cache key cannot see."""
        machine = make_machine(seed=2)
        load(machine, """
        SMIS S0, {0}
        LDI R0, 1
        LDI R1, 32
        LD R2, R1(0)
        CMP R2, R0
        BR EQ, one
        X S0
        BR ALWAYS, join
        one:
        Y S0
        join:
        QWAIT 50
        STOP
        """)

        def applied(traces):
            return [t.name for trace in traces
                    for t in trace.triggers if t.executed]

        first = machine.run(3)
        assert machine.last_run_engine == "replay"  # no ST: replayable
        assert not machine.engine_stats.tree_reused
        assert applied(first) == ["X"] * 3          # memory[32] == 0

        machine.memory.store(32, 1)                 # host flips the knob
        second = machine.run(3)
        assert not machine.engine_stats.tree_reused
        assert applied(second) == ["Y"] * 3         # fresh tree sees it

    def test_experiment_setup_exposes_cache_controls(self):
        from repro.experiments.runner import ExperimentSetup
        setup = ExperimentSetup.create(seed=11)
        assembled = setup.assemble_text(ACTIVE_RESET)
        setup.run_counts(assembled, 40)
        setup.run_counts(assembled, 40)
        assert setup.last_engine_stats.tree_reused
        setup.clear_replay_cache()
        setup.run_counts(assembled, 40)
        assert not setup.last_engine_stats.tree_reused


class TestEngineStatsSnapshot:
    def test_snapshot_mid_stream_is_stable(self):
        """Long sweeps report the engine mix mid-flight: the snapshot
        reflects exactly the shots drawn so far and stays frozen while
        the live stats keep counting."""
        machine = make_machine(noise=NoiseModel(), seed=6)
        load(machine, ACTIVE_RESET)
        iterator = machine.run_iter(50)
        for _ in range(10):
            next(iterator)
        snapshot = machine.engine_stats_snapshot()
        assert snapshot.engine == "replay"
        assert snapshot.shots_total == 10
        assert snapshot.interpreter_shots + snapshot.replay_shots == 10

        remaining = sum(1 for _ in iterator)
        assert remaining == 40
        assert snapshot.shots_total == 10          # frozen
        assert machine.engine_stats.shots_total == 50

        snapshot.shots_total = -1                  # mutating the copy...
        assert machine.engine_stats.shots_total == 50  # ...changes nothing

    def test_setup_snapshot_during_streaming(self):
        from repro.experiments.runner import ExperimentSetup
        setup = ExperimentSetup.create(seed=9)
        assembled = setup.assemble_text(ACTIVE_RESET)
        mid_flight = []
        for index, _ in enumerate(setup.run_iter(assembled, 30)):
            if index == 14:
                mid_flight.append(setup.engine_stats_snapshot())
        assert len(mid_flight) == 1
        assert mid_flight[0].shots_total == 15
        assert setup.last_engine_stats.shots_total == 30
