"""End-to-end tests of all four execution-flag types (Section 4.3).

The instantiation defines four combinatorial flag functions:
(1) always '1'; (2) '1' iff the last finished result was |1>;
(3) '1' iff it was |0>; (4) '1' iff the last two results were equal.
Each is exercised through a full program on the machine, with mock
results making the flag history deterministic.
"""

import numpy as np
import pytest

from repro.core import Assembler, two_qubit_instantiation
from repro.core.operations import (
    ExecutionFlag,
    OperationKind,
    QuantumOperation,
    default_operation_set,
)
from repro.quantum import NoiseModel, QuantumPlant, gates
from repro.uarch import QuMAv2


def make_machine(operations=None, seed=0):
    isa = two_qubit_instantiation(operations)
    plant = QuantumPlant(isa.topology, noise=NoiseModel.noiseless(),
                         rng=np.random.default_rng(seed))
    return isa, QuMAv2(isa, plant)


def run_with_mock(machine, isa, text, mock_results):
    machine.measurement_unit.clear_mock_results()
    machine.measurement_unit.inject_mock_results(2, mock_results)
    machine.load(Assembler(isa).assemble_text(text))
    return machine.run_shot()


PROGRAM_ONE_MEAS = """
SMIS S2, {2}
MEASZ S2
QWAIT 30
GATE S2
STOP
"""

PROGRAM_TWO_MEAS = """
SMIS S2, {2}
MEASZ S2
QWAIT 30
MEASZ S2
QWAIT 30
GATE S2
STOP
"""


class TestAlwaysFlag:
    def test_unconditional_gate_always_fires(self):
        isa, machine = make_machine()
        trace = run_with_mock(machine, isa,
                              PROGRAM_ONE_MEAS.replace("GATE", "X"), [0])
        x_triggers = [t for t in trace.triggers if t.name == "X"]
        assert x_triggers[0].executed
        assert x_triggers[0].condition == "ALWAYS"


class TestLastOneFlag:
    @pytest.mark.parametrize("result,expected", [(1, True), (0, False)])
    def test_cx_follows_last_result(self, result, expected):
        isa, machine = make_machine()
        trace = run_with_mock(machine, isa,
                              PROGRAM_ONE_MEAS.replace("GATE", "C_X"),
                              [result])
        cx = [t for t in trace.triggers if t.name == "C_X"]
        assert cx[0].executed is expected


class TestLastZeroFlag:
    @pytest.mark.parametrize("result,expected", [(0, True), (1, False)])
    def test_c0x_follows_last_result(self, result, expected):
        isa, machine = make_machine()
        trace = run_with_mock(machine, isa,
                              PROGRAM_ONE_MEAS.replace("GATE", "C0_X"),
                              [result])
        c0x = [t for t in trace.triggers if t.name == "C0_X"]
        assert c0x[0].executed is expected


class TestLastTwoEqualFlag:
    @pytest.fixture()
    def setup(self):
        operations = default_operation_set()
        operations.add(QuantumOperation(
            name="CEQ_Y", kind=OperationKind.SINGLE_QUBIT,
            duration_cycles=1, unitary=gates.Y,
            condition=ExecutionFlag.LAST_TWO_EQUAL))
        return make_machine(operations)

    @pytest.mark.parametrize("results,expected", [
        ([0, 0], True),
        ([1, 1], True),
        ([0, 1], False),
        ([1, 0], False),
    ])
    def test_flag_four_compares_last_two(self, setup, results, expected):
        isa, machine = setup
        trace = run_with_mock(machine, isa,
                              PROGRAM_TWO_MEAS.replace("GATE", "CEQ_Y"),
                              results)
        ceq = [t for t in trace.triggers if t.name == "CEQ_Y"]
        assert ceq[0].executed is expected

    def test_single_measurement_not_enough(self, setup):
        # With only one finished result, "last two equal" reads '0'.
        isa, machine = setup
        trace = run_with_mock(machine, isa,
                              PROGRAM_ONE_MEAS.replace("GATE", "CEQ_Y"), [1])
        ceq = [t for t in trace.triggers if t.name == "CEQ_Y"]
        assert ceq[0].executed is False


class TestCancelledGatesDoNotTouchPlant:
    def test_cancelled_operation_absent_from_log(self):
        isa, machine = make_machine()
        run_with_mock(machine, isa,
                      PROGRAM_ONE_MEAS.replace("GATE", "C_X"), [0])
        assert all(op.name != "C_X"
                   for op in machine.plant.operations_log)

    def test_somq_conditional_filters_per_qubit(self):
        """A conditional SOMQ gate on both qubits cancels only on the
        qubit whose flag reads '0'."""
        isa, machine = make_machine()
        machine.measurement_unit.clear_mock_results()
        machine.measurement_unit.inject_mock_results(0, [1])
        machine.measurement_unit.inject_mock_results(2, [0])
        text = """
        SMIS S0, {0}
        SMIS S2, {2}
        SMIS S7, {0, 2}
        1, MEASZ S7
        QWAIT 30
        C_X S7
        STOP
        """
        machine.load(Assembler(isa).assemble_text(text))
        trace = machine.run_shot()
        cx = {t.qubits[0]: t.executed for t in trace.triggers
              if t.name == "C_X"}
        assert cx == {0: True, 2: False}
        applied = [op.qubits for op in machine.plant.operations_log
                   if op.name == "C_X"]
        assert applied == [(0,)]
