"""Kill-analysis and counted-loop (trip-count) edge cases.

The exploration engine in ``uarch/dataflow.py`` must (a) prove a load
shot-local exactly when a same-shot store to the same address
dominates it on *every* path — per occurrence, so unrolled loop
iterations are judged individually; (b) unroll backward branches whose
trip count the constant lattice resolves, keeping loop-carried
addresses exact and bounding per-shot measurements; (c) degrade to the
joined fixpoint (never hang, never mis-prove) when a loop cannot be
unrolled.  The machine-integration half pins what this buys: counted
loops and spill/reload programs ride the replay engine end to end, the
mock-fingerprint clamp uses the true per-shot measurement bound, and
``EngineStats`` surfaces ``killed_loads``/``bounded_loops``.
"""

import numpy as np

from repro.core import Assembler, two_qubit_instantiation
from repro.quantum import NoiseModel, QuantumPlant
from repro.uarch import QuMAv2, analyze_data_memory


def make_machine(seed=0, noise=None):
    isa = two_qubit_instantiation()
    plant = QuantumPlant(isa.topology,
                         noise=noise or NoiseModel.noiseless(),
                         rng=np.random.default_rng(seed))
    return QuMAv2(isa, plant)


def analyze(text):
    machine = make_machine()
    machine.load(Assembler(machine.isa).assemble_text(text))
    return analyze_data_memory(machine.instruction_memory())


def machine_report(text, seed=0):
    machine = make_machine(seed=seed)
    machine.load(Assembler(machine.isa).assemble_text(text))
    return machine, machine.data_memory_report()


class TestKillAnalysis:
    def test_store_on_both_arms_kills_the_load(self):
        """The dominating-store proof is a must (intersection) fact:
        when every path to the load stores the address first, the load
        is killed even though no single store dominates textually."""
        report = analyze("""
        SMIS S2, {2}
        X90 S2
        MEASZ S2
        QWAIT 50
        FMR R4, Q2
        LDI R0, 1
        LDI R1, 64
        CMP R4, R0
        BR EQ, other
        ST R0, R1(0)
        BR ALWAYS, join
        other:
        ST R4, R1(0)
        join:
        LD R2, R1(0)
        STOP
        """)
        assert report.replay_safe
        assert report.killed_load_count == 1

    def test_store_on_one_arm_only_does_not_kill(self):
        """A path skipping the store reaches the load with last shot's
        value still visible — the kill proof must fail."""
        report = analyze("""
        SMIS S2, {2}
        X90 S2
        MEASZ S2
        QWAIT 50
        FMR R4, Q2
        LDI R0, 1
        LDI R1, 64
        CMP R4, R0
        BR EQ, skip
        ST R0, R1(0)
        skip:
        LD R2, R1(0)
        STOP
        """)
        assert not report.replay_safe
        assert report.killed_load_count == 0
        assert any("live" in reason for reason in report.live_reasons)

    def test_unknown_store_between_kill_and_load_is_harmless(self):
        """An unknown-address store cannot *un*-write an address: the
        killed load still only observes same-shot data, whichever
        store wrote it last."""
        report = analyze("""
        SMIS S2, {2}
        X90 S2
        MEASZ S2
        QWAIT 50
        FMR R4, Q2
        LDI R0, 7
        LDI R1, 64
        ST R0, R1(0)
        ST R0, R4(0)
        LD R2, R1(0)
        STOP
        """)
        assert report.replay_safe
        assert report.killed_load_count == 1

    def test_loop_carried_accumulator_is_killed_by_init_store(self):
        """Spill accumulation across iterations: the pre-loop init
        store kills the first iteration's load, each iteration's store
        kills the next one's — every occurrence is shot-local."""
        report = analyze("""
        LDI R0, 3
        LDI R1, 1
        LDI R2, 64
        ST R1, R2(0)
        loop:
        LD R3, R2(0)
        ADD R3, R3, R1
        ST R3, R2(0)
        SUB R0, R0, R1
        CMP R0, R1
        BR GE, loop
        STOP
        """)
        assert report.replay_safe
        assert report.killed_load_count == 1
        assert report.bounded_loop_count == 1

    def test_accumulator_without_init_store_is_live(self):
        """Drop the init store and the first iteration reads the
        previous shot's final accumulator value — genuinely live."""
        report = analyze("""
        LDI R0, 3
        LDI R1, 1
        LDI R2, 64
        loop:
        LD R3, R2(0)
        ADD R3, R3, R1
        ST R3, R2(0)
        SUB R0, R0, R1
        CMP R0, R1
        BR GE, loop
        STOP
        """)
        assert not report.replay_safe
        assert report.killed_load_count == 0

    def test_cross_iteration_alias_ahead_of_the_store_is_live(self):
        """Iteration i loads the address iteration i+1 stores — at
        load time the shot has not written it yet, so the value is
        last shot's."""
        report = analyze("""
        LDI R0, 3
        LDI R1, 1
        LDI R2, 64
        LDI R3, 4
        loop:
        ST R1, R2(0)
        LD R5, R2(4)
        ADD R2, R2, R3
        SUB R0, R0, R1
        CMP R0, R1
        BR GE, loop
        STOP
        """)
        assert not report.replay_safe

    def test_cross_iteration_alias_behind_the_store_is_judged_per_occurrence(self):
        """Iteration i reloads iteration i-1's store: every occurrence
        except the first is killed, and the first reads an address no
        store ever writes (plain host memory) — the program is safe,
        but not fully killed (so not cross-run cacheable)."""
        report = analyze("""
        LDI R0, 3
        LDI R1, 1
        LDI R2, 64
        LDI R3, 4
        loop:
        LD R5, R2(-4)
        ST R1, R2(0)
        ADD R2, R2, R3
        SUB R0, R0, R1
        CMP R0, R1
        BR GE, loop
        STOP
        """)
        assert report.replay_safe
        assert report.killed_load_count == 0   # first occurrence survives
        assert not report.cross_run_cacheable

    def test_fully_killed_loads_are_cross_run_cacheable(self):
        report = analyze("""
        LDI R0, 7
        LDI R1, 64
        ST R0, R1(0)
        LD R2, R1(0)
        STOP
        """)
        assert report.cross_run_cacheable

    def test_unkilled_host_load_is_safe_but_not_cacheable(self):
        report = analyze("""
        LDI R1, 64
        LD R2, R1(0)
        STOP
        """)
        assert report.replay_safe
        assert not report.cross_run_cacheable


class TestTripCountResolution:
    def test_zero_trip_loop_body_is_unreachable(self):
        """A loop whose condition is statically false on entry never
        executes its body — a live load inside it cannot block."""
        report = analyze("""
        LDI R0, 0
        LDI R1, 1
        LDI R2, 64
        CMP R0, R1
        BR GE, loop_entry
        BR ALWAYS, done
        loop_entry:
        LD R3, R2(0)
        ST R1, R2(0)
        SUB R0, R0, R1
        CMP R0, R1
        BR GE, loop_entry
        done:
        STOP
        """)
        assert report.replay_safe
        assert report.load_count == 0
        assert report.store_count == 0

    def test_nested_counted_loops_unroll(self):
        """Both counters resolve: the inner loop's store addresses
        stay exact across the outer iterations."""
        report = analyze("""
        LDI R0, 3
        LDI R1, 1
        LDI R2, 64
        LDI R3, 4
        outer:
        LDI R4, 2
        inner:
        ST R1, R2(0)
        ADD R2, R2, R3
        SUB R4, R4, R1
        CMP R4, R1
        BR GE, inner
        SUB R0, R0, R1
        CMP R0, R1
        BR GE, outer
        STOP
        """)
        assert report.replay_safe
        assert report.bounded_loop_count == 2
        assert report.unbounded_loop_pcs == ()
        assert report.analysis_mode == "exploration"

    def test_unbounded_loop_is_distinguished_from_counted(self):
        """A backward branch on an FMR result has no static trip
        count: it is reported as unbounded (and poisons the
        measurement bound), while the analysis still terminates."""
        machine, report = machine_report("""
        SMIS S2, {2}
        LDI R0, 1
        QWAIT 10000
        loop:
        X90 S2
        MEASZ S2
        QWAIT 50
        FMR R1, Q2
        CMP R1, R0
        BR EQ, loop
        STOP
        """)
        assert report.analysis_mode == "exploration"
        assert report.bounded_loop_count == 0
        assert len(report.unbounded_loop_pcs) == 1
        assert report.max_measurements_per_shot is None

    def test_counted_measurement_loop_has_exact_bound(self):
        """trip count x slots per iteration: the machine supplies the
        per-instruction slot table, so a 4-round loop measuring one
        qubit bounds at 4."""
        machine, report = machine_report("""
        SMIS S2, {2}
        LDI R0, 4
        LDI R1, 1
        QWAIT 10000
        loop:
        X90 S2
        MEASZ S2
        QWAIT 50
        SUB R0, R0, R1
        CMP R0, R1
        BR GE, loop
        QWAIT 50
        STOP
        """)
        assert report.bounded_loop_count == 1
        assert report.max_measurements_per_shot == 4
        assert machine._mock_fingerprint_clamp(64) == 4

    def test_loop_free_bound_matches_slot_count(self):
        machine, report = machine_report("""
        SMIS S2, {2}
        X90 S2
        MEASZ S2
        QWAIT 50
        MEASZ S2
        QWAIT 50
        STOP
        """)
        assert report.max_measurements_per_shot == 2

    def test_over_budget_loop_falls_back_to_joined_mode(self):
        """A trip count too large to unroll: the joined fixpoint takes
        over; loop-carried addresses go unknown, and the reasons name
        the backward branch that defeated the unroll."""
        report = analyze("""
        LDI R0, 500000
        LDI R1, 1
        LDI R2, 64
        LDI R3, 4
        loop:
        ST R1, R2(0)
        ADD R2, R2, R3
        SUB R0, R0, R1
        CMP R0, R1
        BR GE, loop
        LD R5, R2(4)
        STOP
        """)
        assert report.analysis_mode == "joined"
        assert not report.replay_safe
        assert any("budget" in reason for reason in report.live_reasons)
        assert any("unknown" in reason for reason in report.live_reasons)

    def test_over_budget_loop_without_loads_is_still_safe(self):
        """The fallback stays sound *and* quiet: with no loads the
        joined verdict is safe, so no loop reason is attached."""
        report = analyze("""
        LDI R0, 500000
        LDI R1, 1
        LDI R2, 64
        LDI R3, 4
        loop:
        ST R1, R2(0)
        ADD R2, R2, R3
        SUB R0, R0, R1
        CMP R0, R1
        BR GE, loop
        STOP
        """)
        assert report.analysis_mode == "joined"
        assert report.replay_safe
        assert report.live_reasons == ()

    def test_joined_mode_does_not_trust_stale_fbr_destinations(self):
        """Regression: the joined fallback must treat an FBR result as
        unknown — a stale constant in its destination would fold the
        load address and mis-prove a run-time-dependent load killed."""
        report = analyze("""
        SMIS S2, {2}
        LDI R9, 500000
        LDI R1, 1
        biglp:
        SUB R9, R9, R1
        CMP R9, R1
        BR GE, biglp
        X90 S2
        MEASZ S2
        QWAIT 50
        FMR R4, Q2
        CMP R4, R1
        FBR EQ, R6
        LDI R0, 0
        ST R0, R0(0)
        LD R7, R6(0)
        STOP
        """)
        assert report.analysis_mode == "joined"   # budget exceeded
        # R6 is 0 or 1 depending on the measurement: the load may read
        # address 1, which no same-shot store writes.
        assert not report.replay_safe
        assert report.killed_load_count == 0

    def test_cycle_through_the_entry_leaves_the_bound_unknown(self):
        """Regression: a loop whose backward edge targets pc 0 (the
        exploded graph's entry) is still a cycle — the measurement
        bound must come back None, not a finite longest path."""
        machine, report = machine_report("""
        loop:
        SMIS S2, {2}
        MEASZ S2
        QWAIT 50
        BR ALWAYS, loop
        """)
        assert report.max_measurements_per_shot is None
        assert machine._mock_fingerprint_clamp(64) == 64
        # Regression: the branch resolves (ALWAYS) on every visit, but
        # it never exits — it must not be counted as a bounded loop.
        assert report.bounded_loop_count == 0
        assert len(report.unbounded_loop_pcs) == 1

    def test_counted_loop_downstream_of_a_cycle_stays_bounded(self):
        """Regression: only backward branches *on* a cycle count as
        unbounded — a counted loop that merely executes after an
        unbounded (run-time-condition) loop is still statically
        unrolled and must be reported as bounded."""
        report = analyze("""
        SMIS S2, {2}
        LDI R0, 1
        QWAIT 10000
        rus:
        X90 S2
        MEASZ S2
        QWAIT 50
        FMR R1, Q2
        CMP R1, R0
        BR EQ, rus
        LDI R9, 3
        cnt:
        X S2
        QWAIT 5
        SUB R9, R9, R0
        CMP R9, R0
        BR GE, cnt
        STOP
        """)
        assert report.bounded_loop_count == 1
        assert len(report.unbounded_loop_pcs) == 1

    def test_deposit_array_loop_analyzes_quickly(self):
        """Regression: the must-available-store sets only track
        addresses some load queries, so a counted deposit loop storing
        to thousands of distinct addresses stays linear instead of
        quadratic in the trip count."""
        import time
        text = """
        LDI R0, 8000
        LDI R1, 1
        LDI R2, 64
        LDI R3, 4
        LDI R5, 32
        ST R1, R5(0)
        loop:
        ST R1, R2(0)
        ADD R2, R2, R3
        SUB R0, R0, R1
        CMP R0, R1
        BR GE, loop
        LD R6, R5(0)
        STOP
        """
        start = time.perf_counter()
        report = analyze(text)
        elapsed = time.perf_counter() - start
        assert report.replay_safe
        assert report.killed_load_count == 1
        assert report.bounded_loop_count == 1
        # ~0.3 s on the dev container after the fix; minutes before.
        assert elapsed < 5.0

    def test_unresolved_labels_poison_only_aliasing(self):
        """Unresolved labels leave no CFG: aliasing is unprovable only
        when both a load and a store exist; a store-only (or
        load-only) binary stays safe."""
        from repro.core.instructions import Br, Ld, Ldi, St, Stop
        from repro.core.registers import ComparisonFlag

        store_only = [Ldi(rd=1, imm=64), St(rs=0, rt=1, imm=0),
                      Br(condition=ComparisonFlag.NEVER, target="x"),
                      Stop()]
        report = analyze_data_memory(store_only)
        assert report.replay_safe
        assert report.analysis_mode == "unresolved-labels"
        assert report.max_measurements_per_shot is None

        load_only = [Ldi(rd=1, imm=64), Ld(rd=2, rt=1, imm=0),
                     Br(condition=ComparisonFlag.NEVER, target="x"),
                     Stop()]
        assert analyze_data_memory(load_only).replay_safe

        both = store_only[:2] + load_only[1:]
        report = analyze_data_memory(both)
        assert not report.replay_safe
        assert len(report.live_reasons) == 1
        assert "unresolved" in report.live_reasons[0]


class TestMachineIntegration:
    COUNTED_LOOP = """
    SMIS S2, {2}
    LDI R0, 4
    LDI R1, 1
    QWAIT 10000
    loop:
    X90 S2
    MEASZ S2
    QWAIT 50
    SUB R0, R0, R1
    CMP R0, R1
    BR GE, loop
    QWAIT 50
    STOP
    """

    SPILL_RELOAD = """
    SMIS S0, {0}
    SMIS S2, {2}
    LDI R0, 1
    LDI R2, 64
    QWAIT 10000
    X90 S2
    MEASZ S2
    QWAIT 50
    FMR R1, Q2
    ST R1, R2(0)
    LD R4, R2(0)
    CMP R4, R0
    BR EQ, eq
    X S0
    BR ALWAYS, join
    eq:
    Y S0
    join:
    QWAIT 50
    STOP
    """

    def test_counted_loop_program_replays(self):
        machine = make_machine(seed=4, noise=NoiseModel())
        machine.load(Assembler(machine.isa).assemble_text(
            self.COUNTED_LOOP))
        assert machine.replay_unsupported_reasons() == []
        traces = machine.run(300)
        stats = machine.engine_stats
        assert machine.last_run_engine == "replay"
        assert machine.replay_fallback_reason is None
        assert stats.bounded_loops == 1
        assert stats.replay_shots > stats.interpreter_shots
        assert all(len(t.results) == 4 for t in traces)

    def test_spill_reload_program_replays_and_steers_feedback(self):
        """The reloaded value drives the X/Y branch: the replayed
        control flow must match the replayed measurement outcome shot
        by shot (the load genuinely observed the same-shot store)."""
        machine = make_machine(seed=4)
        machine.load(Assembler(machine.isa).assemble_text(
            self.SPILL_RELOAD))
        assert machine.replay_unsupported_reasons() == []
        traces = machine.run(200)
        stats = machine.engine_stats
        assert machine.last_run_engine == "replay"
        assert stats.killed_loads == 1
        assert stats.replay_shots > stats.interpreter_shots
        for trace in traces:
            applied = [r.name for r in trace.triggers
                       if r.qubits == (0,) and r.executed]
            expected = "Y" if trace.results[0].reported_result == 1 \
                else "X"
            assert applied == [expected]

    def test_spill_reload_tree_is_reused_across_runs(self):
        """All loads killed -> host writes cannot be observed -> the
        saturated tree survives into the next run()."""
        machine = make_machine(seed=4)
        machine.load(Assembler(machine.isa).assemble_text(
            self.SPILL_RELOAD))
        machine.run(50)
        assert not machine.engine_stats.tree_reused
        machine.run(50)
        stats = machine.engine_stats
        assert stats.tree_reused
        assert stats.interpreter_shots == 0

    def test_counted_loop_mock_queue_shares_bounded_roots(self):
        """The true per-shot measurement bound (4) clamps the mock
        fingerprint: a long draining queue maps onto value windows of
        length 4 instead of the 64-deep depth-cap windows, so the
        alternating pattern collapses onto two roots."""
        machine = make_machine(seed=7)
        machine.load(Assembler(machine.isa).assemble_text(
            self.COUNTED_LOOP))
        machine.measurement_unit.inject_mock_results(
            2, [i % 2 for i in range(400)])
        traces = machine.run(100)  # 4 mocks consumed per shot
        stats = machine.engine_stats
        assert machine.last_run_engine == "replay"
        assert stats.tree_roots <= 2
        assert stats.replay_shots > stats.interpreter_shots
        assert not machine.measurement_unit.has_mock_results(2)
        for trace in traces:
            assert [r.reported_result for r in trace.results] == \
                [0, 1, 0, 1]

    def test_engine_stats_surface_the_new_counters(self):
        machine = make_machine(seed=4)
        machine.load(Assembler(machine.isa).assemble_text(
            self.SPILL_RELOAD))
        machine.run(20)
        as_dict = machine.engine_stats.as_dict()
        assert as_dict["killed_loads"] == 1
        assert as_dict["bounded_loops"] == 0
        assert as_dict["dead_stores"] == 1


class TestMockViewEpochCache:
    def test_fingerprint_is_reused_while_the_queue_is_untouched(self):
        machine = make_machine()
        unit = machine.measurement_unit
        unit.inject_mock_results(2, [1, 0, 1])
        first = unit.mock_view(clamp=2)
        second = unit.mock_view(clamp=2)
        assert second.fingerprint is first.fingerprint  # cached tuple

    def test_consumption_invalidates_the_cached_fingerprint(self):
        machine = make_machine()
        unit = machine.measurement_unit
        unit.inject_mock_results(2, [1, 0, 1])
        first = unit.mock_view(clamp=2)
        assert first.peek(2) == 1
        first.commit()                      # cursor moved: epoch bump
        second = unit.mock_view(clamp=2)
        assert second.fingerprint == ((2, (0, 1)),)
        assert second.fingerprint != first.fingerprint

    def test_no_mock_views_share_the_empty_singleton(self):
        machine = make_machine()
        unit = machine.measurement_unit
        view_a = unit.mock_view(clamp=4)
        view_b = unit.mock_view(clamp=4)
        assert view_a is view_b
        assert view_a.fingerprint == ()

    def test_injection_after_empty_views_is_visible(self):
        machine = make_machine()
        unit = machine.measurement_unit
        assert unit.mock_view(clamp=2).fingerprint == ()
        unit.inject_mock_results(2, [1])
        assert unit.mock_view(clamp=2).fingerprint == ((2, (1,)),)

    def test_uncommitted_walk_does_not_poison_the_next_view(self):
        """A cache-missing walk peeks but never commits: the next
        shot's view must start from untouched offsets."""
        machine = make_machine()
        unit = machine.measurement_unit
        unit.inject_mock_results(2, [1, 0])
        view = unit.mock_view(clamp=2)
        assert view.peek(2) == 1            # walk missed; no commit
        fresh = unit.mock_view(clamp=2)
        assert fresh.peek(2) == 1           # offsets start over
