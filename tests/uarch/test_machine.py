"""End-to-end machine tests: the paper's example programs executed on
the full microarchitecture + plant."""

import numpy as np
import pytest

from repro.core import Assembler, seven_qubit_instantiation, \
    two_qubit_instantiation
from repro.core.errors import (
    OperationConflictError,
    RuntimeFault,
    TimingViolationError,
)
from repro.quantum import NoiseModel, QuantumPlant
from repro.uarch import QuMAv2, UarchConfig, slip_config


def make_machine(isa=None, noise=None, seed=0, config=None):
    isa = isa or two_qubit_instantiation()
    plant = QuantumPlant(isa.topology,
                         noise=noise or NoiseModel.noiseless(),
                         rng=np.random.default_rng(seed))
    return QuMAv2(isa, plant, config=config)


def load(machine, text):
    machine.load(Assembler(machine.isa).assemble_text(text))


class TestFig3AllXYRoutine:
    """The Fig. 3 two-qubit AllXY routine on the machine."""

    TEXT = """
    SMIS S0, {0}
    SMIS S2, {2}
    SMIS S7, {0, 2}
    QWAIT 10000
    0, Y S7
    1, X90 S0 | X S2
    1, MEASZ S7
    QWAIT 50
    STOP
    """

    def test_operations_applied_in_order(self):
        machine = make_machine()
        load(machine, self.TEXT)
        machine.run_shot()
        log = machine.plant.operations_log
        names = [op.name for op in log]
        # Y on both qubits (SOMQ, one device channel per qubit), then
        # X90 and X, then two measurements.
        assert names[0] == names[1] == "Y"
        assert set(names[2:4]) == {"X90", "X"}
        assert names[4] == names[5] == "MEASZ"

    def test_relative_timing_matches_paper(self):
        # Y immediately after init, X90/X 20 ns later, MEASZ 40 ns later.
        machine = make_machine()
        load(machine, self.TEXT)
        machine.run_shot()
        log = machine.plant.operations_log
        start = {op.name: op.start_ns for op in log}
        assert start["X90"] - start["Y"] == pytest.approx(20.0)
        assert start["MEASZ"] - start["Y"] == pytest.approx(40.0)

    def test_somq_y_on_both_qubits(self):
        machine = make_machine()
        load(machine, self.TEXT)
        machine.run_shot()
        y_ops = [op for op in machine.plant.operations_log
                 if op.name == "Y"]
        assert sorted(q for op in y_ops for q in op.qubits) == [0, 2]

    def test_measurement_results_recorded(self):
        machine = make_machine(seed=3)
        load(machine, self.TEXT)
        trace = machine.run_shot()
        assert len(trace.results) == 2
        assert {record.qubit for record in trace.results} == {0, 2}

    def test_expected_statistics(self):
        # Qubit 0: Y then X90 -> P(1) = 0.5; qubit 2: Y then X -> |0>.
        machine = make_machine(seed=11)
        load(machine, self.TEXT)
        ones0 = ones2 = 0
        shots = 300
        for _ in range(shots):
            trace = machine.run_shot()
            ones0 += trace.last_result(0)
            ones2 += trace.last_result(2)
        assert ones0 / shots == pytest.approx(0.5, abs=0.08)
        assert ones2 / shots == pytest.approx(0.0, abs=0.02)


class TestFig4ActiveReset:
    """Fig. 4: fast conditional execution resets the qubit."""

    TEXT = """
    SMIS S2, {2}
    QWAIT 10000
    X90 S2
    MEASZ S2
    QWAIT 50
    C_X S2
    MEASZ S2
    STOP
    """

    def test_noiseless_reset_is_perfect(self):
        machine = make_machine(seed=5)
        load(machine, self.TEXT)
        for _ in range(50):
            trace = machine.run_shot()
            assert trace.last_result(2) == 0

    def test_cx_cancelled_when_result_zero(self):
        machine = make_machine(seed=5)
        load(machine, self.TEXT)
        saw_cancelled = saw_executed = False
        for _ in range(60):
            trace = machine.run_shot()
            first_result = trace.results_for(2)[0].reported_result
            cx = [t for t in trace.triggers if t.name == "C_X"]
            assert len(cx) == 1
            if first_result == 1:
                assert cx[0].executed
                saw_executed = True
            else:
                assert not cx[0].executed
                saw_cancelled = True
        assert saw_executed and saw_cancelled

    def test_conditional_gate_only_in_plant_log_when_executed(self):
        machine = make_machine(seed=9)
        load(machine, self.TEXT)
        trace = machine.run_shot()
        cx_applied = [op for op in machine.plant.operations_log
                      if op.name == "C_X"]
        cx_trigger = [t for t in trace.triggers if t.name == "C_X"]
        assert len(cx_applied) == (1 if cx_trigger[0].executed else 0)

    def test_noisy_reset_bounded_by_readout(self):
        machine = make_machine(noise=NoiseModel(), seed=21)
        load(machine, self.TEXT)
        zeros = 0
        shots = 600
        for _ in range(shots):
            trace = machine.run_shot()
            zeros += 1 - trace.last_result(2)
        # Paper: 82.7 %, limited by readout fidelity (~0.905 here).
        assert zeros / shots == pytest.approx(0.827, abs=0.05)


class TestFig5CFC:
    """Fig. 5: comprehensive feedback control via FMR/CMP/BR."""

    TEXT = """
    SMIS S0, {0}
    SMIS S2, {2}
    LDI R0, 1
    X90 S2
    MEASZ S2
    QWAIT 30
    FMR R1, Q2
    CMP R1, R0
    BR EQ, eq_path
    ne_path:
    X S0
    BR ALWAYS, next
    eq_path:
    Y S0
    next:
    STOP
    """

    def test_branch_follows_measurement(self):
        machine = make_machine(seed=2)
        load(machine, self.TEXT)
        saw = set()
        for _ in range(60):
            trace = machine.run_shot()
            result = trace.results_for(2)[0].reported_result
            applied = [op.name for op in machine.plant.operations_log
                       if op.qubits == (0,)]
            assert len(applied) == 1
            expected = "Y" if result == 1 else "X"
            assert applied[0] == expected
            saw.add(expected)
        assert saw == {"X", "Y"}

    def test_fmr_fetches_reported_result(self):
        machine = make_machine(seed=8)
        load(machine, self.TEXT)
        trace = machine.run_shot()
        result = trace.results_for(2)[0].reported_result
        assert machine.gprs.read(1) == result

    def test_mock_results_alternate_x_y(self):
        # The paper's CFC verification: the UHFQC produces alternating
        # mock results; the output must alternate X and Y.
        machine = make_machine(seed=4)
        machine.measurement_unit.inject_mock_results(
            2, [0, 1] * 10)
        load(machine, self.TEXT)
        applied = []
        for _ in range(20):
            machine.run_shot()
            ops = [op.name for op in machine.plant.operations_log
                   if op.qubits == (0,)]
            applied.extend(ops)
        assert applied == ["X", "Y"] * 10

    def test_mock_results_do_not_touch_plant(self):
        machine = make_machine(seed=4)
        machine.measurement_unit.inject_mock_results(2, [1])
        load(machine, self.TEXT)
        machine.run_shot()
        measured = [op for op in machine.plant.operations_log
                    if op.name == "MEASZ"]
        assert measured == []

    def test_fmr_deadlock_detected(self):
        machine = make_machine()
        load(machine, """
        FMR R0, Q2
        STOP
        """)
        # Q2 is valid (no measurement pending): FMR returns 0 directly.
        trace = machine.run_shot()
        assert machine.gprs.read(0) == 0

    def test_fmr_waits_for_pending_result(self):
        machine = make_machine(seed=1)
        load(machine, """
        SMIS S2, {2}
        X S2
        MEASZ S2
        FMR R1, Q2
        STOP
        """)
        trace = machine.run_shot()
        # Noiseless: X|0> = |1>, so FMR must deliver 1 after stalling.
        assert machine.gprs.read(1) == 1
        # The stall pushed classical time past the measurement window.
        assert trace.classical_time_ns > 300.0


class TestTimingPolicies:
    DENSE = """
    SMIS S0, {0}
    SMIS S1, {1}
    SMIS S2, {2}
    SMIS S3, {3}
    X S0
    0, X S1
    0, X S2
    0, X S3
    1, Y S0
    0, Y S1
    0, Y S2
    0, Y S3
    STOP
    """

    def test_strict_raises_on_underrun(self):
        # 4 bundle words per 20 ns point at 10 ns/instruction cannot
        # keep up: Rreq > Rallowed.
        isa = seven_qubit_instantiation()
        machine = make_machine(isa=isa)
        load(machine, self.DENSE)
        with pytest.raises(TimingViolationError):
            machine.run_shot()

    def test_slip_records_slippage(self):
        isa = seven_qubit_instantiation()
        machine = make_machine(isa=isa, config=slip_config())
        load(machine, self.DENSE)
        trace = machine.run_shot()
        assert trace.slips
        assert trace.max_slip_ns() > 0

    def test_sustainable_stream_has_no_slip(self):
        isa = seven_qubit_instantiation()
        machine = make_machine(isa=isa, config=slip_config())
        load(machine, """
        SMIS S7, {0, 1, 2, 3}
        X S7
        Y S7
        X S7
        Y S7
        STOP
        """)
        trace = machine.run_shot()
        assert trace.slips == []

    def test_conflict_stops_processor(self):
        machine = make_machine()
        load(machine, """
        SMIS S0, {0}
        SMIS S1, {0}
        X S0
        0, Y S1
        STOP
        """)
        with pytest.raises(OperationConflictError):
            machine.run_shot()


class TestTwoQubitGates:
    def test_cz_applied_once_per_pair(self):
        machine = make_machine(seed=0)
        load(machine, """
        SMIS S0, {0}
        SMIT T0, {(0, 2)}
        X S0
        CZ T0
        STOP
        """)
        machine.run_shot()
        cz_ops = [op for op in machine.plant.operations_log
                  if op.name == "CZ"]
        assert len(cz_ops) == 1
        assert cz_ops[0].qubits == (0, 2)

    def test_cz_produces_entangling_phase(self):
        # |+>|1> -CZ-> |->|1>: verify via the plant state.
        machine = make_machine(seed=0)
        load(machine, """
        SMIS S0, {0}
        SMIS S2, {2}
        SMIT T0, {(0, 2)}
        1, H S0 | X S2
        CZ T0
        2, H S0     # CZ lasts 2 cycles; wait for it to finish
        STOP
        """)
        machine.run_shot()
        # After H-CZ-H with the partner in |1>, qubit 0 ends in |1>.
        assert machine.plant.probability_one(0) == pytest.approx(1.0)

    def test_seven_qubit_parallel_cz(self):
        isa = seven_qubit_instantiation()
        machine = make_machine(isa=isa)
        load(machine, """
        SMIT T0, {(2, 0), (1, 4)}
        CZ T0
        STOP
        """)
        machine.run_shot()
        cz_ops = [op for op in machine.plant.operations_log
                  if op.name == "CZ"]
        assert len(cz_ops) == 2
        assert {op.qubits for op in cz_ops} == {(2, 0), (1, 4)}


class TestBinaryExecution:
    def test_machine_runs_from_raw_words(self):
        # The machine decodes real binary, not parsed objects.
        isa = two_qubit_instantiation()
        assembled = Assembler(isa).assemble_text("""
        SMIS S2, {2}
        X S2
        MEASZ S2
        STOP
        """)
        machine = make_machine()
        machine.load(list(assembled.words))
        trace = machine.run_shot()
        assert trace.last_result(2) == 1
