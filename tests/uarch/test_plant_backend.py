"""Plant-backend selection and dense/tableau equivalence.

The machine picks the quantum-state representation per run: the
stabilizer tableau whenever the static pass proves every gate Clifford
and the noise model Pauli/readout-only, the dense density matrix
otherwise — with the choice and its reasons reported exactly like
engine selection.  The two backends must be *statistically
indistinguishable* wherever both are sound; chi-squared tests over
joint outcome histograms pin that on the paper's feedback workloads.
"""

import numpy as np
import pytest

from repro.core import (
    Assembler,
    seven_qubit_instantiation,
    seventeen_qubit_instantiation,
    two_qubit_instantiation,
)
from repro.core.errors import PlantError, ResourceError
from repro.experiments.cfc import CFC_TWO_ROUND_PROGRAM
from repro.experiments.reset import FIG4_PROGRAM
from repro.experiments.surface_code import (
    looped_surface_code_program,
    run_surface17_experiment,
    run_surface49_experiment,
)
from repro.quantum import NoiseModel, QuantumPlant
from repro.quantum.noise import DecoherenceModel, GateErrorModel
from repro.uarch import QuMAv2
from repro.workloads.surface17 import expected_z_syndrome17
from repro.workloads.surface49 import expected_z_syndrome49

T_GATE_PROGRAM = """
SMIS S2, {2}
QWAIT 10000
T S2
MEASZ S2
QWAIT 50
STOP
"""


def readout_only_noise() -> NoiseModel:
    return NoiseModel(
        decoherence=DecoherenceModel(t1_ns=1e15, t2_ns=1e15),
        gate_error=GateErrorModel(single_qubit_error=0.0,
                                  two_qubit_error=0.0))


def pauli_noise() -> NoiseModel:
    """Pauli-only noise with *stochastic* gate error (trajectories)."""
    return NoiseModel(
        decoherence=DecoherenceModel(t1_ns=1e15, t2_ns=1e15),
        gate_error=GateErrorModel(single_qubit_error=0.05,
                                  two_qubit_error=0.05))


def make_machine(text, seed=0, isa=None, noise=None, policy="auto"):
    isa = isa or two_qubit_instantiation()
    plant = QuantumPlant(isa.topology,
                         noise=noise if noise is not None
                         else readout_only_noise(),
                         rng=np.random.default_rng(seed))
    machine = QuMAv2(isa, plant, plant_backend=policy)
    machine.load(Assembler(isa).assemble_text(text))
    return machine


def joint_histogram(traces):
    histogram = {}
    for trace in traces:
        last = {}
        for record in trace.results:
            last[record.qubit] = record.reported_result
        key = tuple(sorted(last.items()))
        histogram[key] = histogram.get(key, 0) + 1
    return histogram


def assert_distributions_agree(hist_a, hist_b):
    """Chi-squared homogeneity test, pooling sparse outcome bins."""
    keys = sorted(set(hist_a) | set(hist_b))
    if len(keys) < 2:
        assert set(hist_a) == set(hist_b)
        return
    table = np.array([[hist_a.get(k, 0) for k in keys],
                      [hist_b.get(k, 0) for k in keys]])
    totals = table.sum(axis=0)
    dense = table[:, totals >= 10]
    pooled = table[:, totals < 10].sum(axis=1, keepdims=True)
    if pooled.sum() > 0:
        dense = np.hstack([dense, pooled])
    if dense.shape[1] < 2:
        return
    from scipy.stats import chi2_contingency
    _, p_value, _, _ = chi2_contingency(dense)
    assert p_value > 1e-4, \
        f"backends statistically distinguishable (p={p_value})"


class TestBackendSelection:
    def test_clifford_plus_readout_noise_selects_tableau(self):
        machine = make_machine(FIG4_PROGRAM)
        machine.run(5)
        assert machine.last_plant_backend == "stabilizer"
        assert machine.plant_backend_reason is None
        assert machine.engine_stats.plant_backend == "stabilizer"

    def test_default_noise_keeps_dense(self):
        machine = make_machine(FIG4_PROGRAM, noise=NoiseModel())
        machine.run(5)
        assert machine.last_plant_backend == "dense"
        assert "decoherence" in machine.plant_backend_reason
        assert machine.engine_stats.plant_backend == "dense"

    def test_non_clifford_gate_keeps_dense(self):
        machine = make_machine(T_GATE_PROGRAM)
        reasons = machine.plant_backend_reasons()
        assert any("'T' is not Clifford" in reason for reason in reasons)
        machine.run(5)
        assert machine.last_plant_backend == "dense"

    def test_policy_pins_backend(self):
        machine = make_machine(FIG4_PROGRAM, policy="dense")
        machine.run(5)
        assert machine.last_plant_backend == "dense"
        assert "pinned" in machine.plant_backend_reason

    def test_selection_agrees_across_engines(self):
        for use_replay in (False, True):
            machine = make_machine(FIG4_PROGRAM, seed=use_replay)
            machine.run(10, use_replay=use_replay)
            assert machine.last_plant_backend == "stabilizer"

    def test_noise_swap_honoured_without_reload(self):
        machine = make_machine(FIG4_PROGRAM, noise=NoiseModel())
        machine.run(5)
        assert machine.last_plant_backend == "dense"
        machine.plant.noise = readout_only_noise()
        machine.run(5)
        assert machine.last_plant_backend == "stabilizer"

    def test_trajectory_noise_blocks_replay_not_tableau(self):
        machine = make_machine(FIG4_PROGRAM, noise=pauli_noise())
        reasons = machine.replay_unsupported_reasons()
        assert any("trajectory" in reason for reason in reasons)
        machine.run(10)
        assert machine.last_plant_backend == "stabilizer"
        assert machine.last_run_engine == "interpreter"
        assert "trajectory" in machine.replay_fallback_reason

    def test_readout_only_noise_compounds_both_fast_paths(self):
        machine = make_machine(FIG4_PROGRAM)
        machine.run(100)
        assert machine.last_plant_backend == "stabilizer"
        assert machine.last_run_engine == "replay"
        assert machine.engine_stats.replay_shots > 0


class TestBackendEquivalence:
    """Chi-squared agreement, dense vs tableau, per Clifford scenario."""

    SHOTS = 600

    def _histograms(self, text, isa=None, noise=None, seed=23):
        dense = make_machine(text, seed=seed, isa=isa, noise=noise,
                             policy="dense")
        dense_traces = dense.run(self.SHOTS)
        assert dense.last_plant_backend == "dense"
        tableau = make_machine(text, seed=seed + 1, isa=isa, noise=noise,
                               policy="auto")
        tableau_traces = tableau.run(self.SHOTS)
        assert tableau.last_plant_backend == "stabilizer"
        return (joint_histogram(dense_traces),
                joint_histogram(tableau_traces))

    def test_active_reset(self):
        assert_distributions_agree(*self._histograms(FIG4_PROGRAM))

    def test_two_round_cfc(self):
        assert_distributions_agree(
            *self._histograms(CFC_TWO_ROUND_PROGRAM))

    def test_looped_surface_code(self):
        assert_distributions_agree(*self._histograms(
            looped_surface_code_program(2),
            isa=seven_qubit_instantiation()))

    def test_pauli_trajectory_noise_matches_kraus_channel(self):
        """Sampled Pauli injection (tableau) vs the exact depolarizing
        Kraus channel (dense) must agree in distribution."""
        assert_distributions_agree(*self._histograms(
            FIG4_PROGRAM, noise=pauli_noise()))

    def test_timing_records_identical_across_backends(self):
        """The backend only owns the quantum state: timing-domain
        records of a shared outcome path are bit-identical."""
        dense = make_machine(FIG4_PROGRAM, seed=3, policy="dense")
        tableau = make_machine(FIG4_PROGRAM, seed=4, policy="auto")
        dense_by_path = {}
        for trace in dense.run(200):
            dense_by_path.setdefault(trace.outcome_path(), trace)
        checked = 0
        for trace in tableau.run(200):
            reference = dense_by_path.get(trace.outcome_path())
            if reference is None:
                continue
            assert reference.triggers == trace.triggers
            assert reference.slips == trace.slips
            assert reference.classical_time_ns == trace.classical_time_ns
            checked += 1
        assert checked > 0


class TestSurface17:
    def test_distance3_runs_on_tableau(self):
        result = run_surface17_experiment(rounds=2, shots=40)
        assert result.plant_backend == "stabilizer"
        assert len(result.syndromes_per_shot) == 40
        assert result.detection_fraction(0) == 0.0   # noiseless, clean

    def test_injected_error_fires_expected_checks(self):
        for error in [("X", 0), ("X", 4), ("X", 8), ("X", 2)]:
            result = run_surface17_experiment(
                rounds=2, error=error, error_after_round=0, shots=20)
            expected = expected_z_syndrome17(error)
            assert expected.fired()
            for shot in result.syndromes_per_shot:
                assert shot[1].z_checks == expected.z_checks
            # Distance 3 localises: distinct errors, distinct syndromes.

    def test_z_error_invisible_to_z_checks(self):
        result = run_surface17_experiment(
            rounds=2, error=("Z", 4), error_after_round=0, shots=20)
        assert result.detection_fraction(1) == 0.0

    def test_dense_state_unavailable_at_width_17(self):
        """The accessor that would materialise the 256 GB matrix must
        refuse on the tableau — the whole point of the backend."""
        isa = seventeen_qubit_instantiation()
        plant = QuantumPlant(isa.topology, noise=NoiseModel.noiseless(),
                             backend="stabilizer")
        with pytest.raises(PlantError, match="does not expose"):
            plant.state

    def test_readout_noise_syndromes_flip(self):
        result = run_surface17_experiment(
            rounds=2, shots=200, noise=readout_only_noise())
        assert result.plant_backend == "stabilizer"
        # ~9.5% per-check flip probability: some syndromes must fire.
        assert 0.0 < result.detection_fraction(0) < 0.9


class TestSurface49:
    """Distance 5 on the 192-bit instantiation: the tableau backend is
    the *only* viable plant at 49 qubits, so backend selection, dense
    admission refusal, and syndrome correctness all matter here."""

    def test_distance5_selects_tableau(self):
        result = run_surface49_experiment(rounds=2, shots=10)
        assert result.plant_backend == "stabilizer"
        assert len(result.syndromes_per_shot) == 10
        for shot in result.syndromes_per_shot:
            assert len(shot) == 2                    # one entry per round
            assert len(shot[0].z_checks) == 12       # 12 Z ancillas
        assert result.detection_fraction(0) == 0.0   # noiseless, clean

    def test_injected_error_fires_expected_checks(self):
        # A bulk qubit (two Z plaquettes), a corner, and an edge qubit.
        for error in [("X", 12), ("X", 0), ("X", 4), ("X", 24)]:
            result = run_surface49_experiment(
                rounds=2, error=error, error_after_round=0, shots=10)
            expected = expected_z_syndrome49(error)
            assert expected.fired()
            for shot in result.syndromes_per_shot:
                assert shot[1].z_checks == expected.z_checks

    def test_z_error_invisible_to_z_checks(self):
        result = run_surface49_experiment(
            rounds=2, error=("Z", 12), error_after_round=0, shots=10)
        assert result.detection_fraction(1) == 0.0

    def test_dense_admission_refused_at_width_49(self):
        """A dense 49-qubit state is ~2^101 bytes; admission must refuse
        it up front and point at the stabilizer backend."""
        from repro.topology.library import surface49

        plant = QuantumPlant(surface49(), noise=NoiseModel.noiseless(),
                             backend="dense")
        with pytest.raises(ResourceError,
                           match="plant_backend='stabilizer'"):
            plant.state

    def test_readout_noise_syndromes_flip(self):
        result = run_surface49_experiment(
            rounds=2, shots=50, noise=readout_only_noise())
        assert result.plant_backend == "stabilizer"
        # 12 checks per round at ~9.5% flip each: most shots fire, but
        # noise must not fire everything deterministically.
        assert 0.0 < result.detection_fraction(0) < 1.0


class TestRunCaches:
    def test_dataflow_report_lru_survives_reloads(self):
        isa = two_qubit_instantiation()
        assembler = Assembler(isa)
        program_a = assembler.assemble_text(FIG4_PROGRAM)
        program_b = assembler.assemble_text(CFC_TWO_ROUND_PROGRAM)
        machine = make_machine(FIG4_PROGRAM)
        report_a = machine.data_memory_report()
        machine.load(program_b)
        machine.data_memory_report()
        machine.load(program_a)
        assert machine.data_memory_report() is report_a   # cache hit

    def test_tree_cache_keyed_by_backend_kind(self):
        machine = make_machine(FIG4_PROGRAM)
        machine.run(50)
        assert machine.last_plant_backend == "stabilizer"
        assert not machine.engine_stats.tree_reused
        machine.run(50)
        assert machine.engine_stats.tree_reused
        machine.plant_backend_policy = "dense"
        machine.run(50)
        assert machine.last_plant_backend == "dense"
        assert not machine.engine_stats.tree_reused   # key includes kind

    def test_replayed_traces_share_template_records(self):
        """The splice fix: cached shots alias the template's trigger
        and slip lists instead of copying them per shot."""
        machine = make_machine(FIG4_PROGRAM)
        traces = machine.run(300)
        assert machine.engine_stats.replay_shots > 0
        by_path = {}
        shared = 0
        for trace in traces:
            other = by_path.setdefault(trace.outcome_path(), trace)
            if other is not trace and other.triggers is trace.triggers:
                shared += 1
        assert shared > 0
