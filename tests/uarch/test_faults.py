"""Chaos suite: every fault-injection site, end to end.

For each site of :data:`repro.uarch.faults.FAULT_SITES` the suite
proves the full hardening contract:

1. **detection** — the injected failure surfaces as the documented
   structured error (or degradation) instead of silent corruption;
2. **context** — the error carries its machine-readable context keys;
3. **ladder** — :meth:`ExperimentSetup.run_resilient` degrades onto
   the next rung and still delivers every shot;
4. **recovery** — a clean re-run after disarming is healthy again.
"""

import numpy as np
import pytest

from repro.core import Assembler, two_qubit_instantiation
from repro.core.errors import (
    BackendFaultError,
    ConfigurationError,
    EQASMError,
    GuardFault,
    QueueOverflowError,
    ResourceError,
    RuntimeFault,
    ShotTimeoutError,
)
from repro.experiments.runner import ExperimentSetup, RetryPolicy
from repro.quantum import NoiseModel, QuantumPlant
from repro.uarch import (
    FAULT_SITES,
    FaultPlan,
    FaultSpec,
    QuMAv2,
    UarchConfig,
)

ACTIVE_RESET = """
SMIS S2, {2}
QWAIT 10000
X90 S2
MEASZ S2
QWAIT 50
C_X S2
MEASZ S2
STOP
"""

CFC_FMR = """
SMIS S2, {2}
X S2
MEASZ S2
FMR R1, Q2
STOP
"""


def make_machine(text=ACTIVE_RESET, seed=0, config=None,
                 audit_fraction=0.0):
    isa = two_qubit_instantiation()
    plant = QuantumPlant(isa.topology, noise=NoiseModel(),
                         rng=np.random.default_rng(seed))
    machine = QuMAv2(isa, plant, config=config,
                     audit_fraction=audit_fraction)
    machine.load(Assembler(isa).assemble_text(text))
    return machine


def make_setup(seed=0, **kwargs):
    return ExperimentSetup.create(noise=NoiseModel(), seed=seed,
                                  **kwargs)


class TestFaultPlan:
    """The deterministic schedule itself."""

    def test_unknown_site_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec("warp_core_breach")

    def test_nonpositive_count_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec("backend_gate", count=0)

    def test_shot_pinning_and_budget(self):
        plan = FaultPlan([FaultSpec("backend_gate", shot=2, count=1)])
        plan.begin_run()
        plan.begin_shot(0)
        assert not plan.fire("backend_gate")
        plan.begin_shot(2)
        assert plan.would_fire("backend_gate")
        assert plan.fire("backend_gate", qubit=2)
        # Budget consumed: the same site never fires again.
        assert not plan.fire("backend_gate")
        assert plan.fired_this_run
        [record] = plan.records
        assert record.site == "backend_gate" and record.shot == 2
        assert ("qubit", 2) in record.context
        assert "backend_gate@shot2" in record.describe()

    def test_every_site_is_armable(self):
        plan = FaultPlan([FaultSpec(site) for site in FAULT_SITES])
        for site in FAULT_SITES:
            assert plan.armed(site)


class TestBackendGateFault:
    def test_detection_and_context(self):
        machine = make_machine()
        machine.arm_faults(FaultPlan([FaultSpec("backend_gate",
                                                shot=0)]))
        with pytest.raises(BackendFaultError) as info:
            machine.run(5)
        error = info.value
        assert error.backend == "dense"
        assert error.site == "backend_gate"
        assert error.operation  # the faulting gate name
        assert isinstance(error, RuntimeFault)  # old catchers survive
        # The poisoned tree never reaches the cross-run cache.
        assert not machine._tree_cache
        assert machine.engine_stats.faults_injected

    def test_ladder_and_recovery(self):
        setup = make_setup()
        assembled = setup.assemble_text(ACTIVE_RESET)
        setup.machine.arm_faults(FaultPlan([FaultSpec("backend_gate",
                                                      shot=0)]))
        traces = setup.run_resilient(assembled, 20)
        assert len(traces) == 20
        assert setup.last_engine_stats.degradations
        assert setup.machine.plant_backend_policy == "auto"  # restored
        setup.machine.disarm_faults()
        clean = setup.run_resilient(assembled, 20)
        assert len(clean) == 20
        assert not setup.last_engine_stats.degradations


class TestSnapshotCorruptFault:
    def test_detection_and_context(self):
        isa = two_qubit_instantiation()
        plant = QuantumPlant(isa.topology, noise=NoiseModel(),
                             rng=np.random.default_rng(0))
        snapshot = plant.snapshot()
        plant.fault_plan = FaultPlan([FaultSpec("snapshot_corrupt")])
        with pytest.raises(BackendFaultError) as info:
            plant.restore(snapshot)
        error = info.value
        assert error.backend == "dense"
        assert error.operation == "restore"
        assert error.site == "snapshot_corrupt"

    def test_recovery_after_disarm(self):
        isa = two_qubit_instantiation()
        plant = QuantumPlant(isa.topology, noise=NoiseModel(),
                             rng=np.random.default_rng(0))
        snapshot = plant.snapshot()
        plant.fault_plan = FaultPlan([FaultSpec("snapshot_corrupt")])
        with pytest.raises(BackendFaultError):
            plant.restore(snapshot)
        plant.fault_plan = None
        # An untampered snapshot restores fine afterwards.
        plant.restore(plant.snapshot())

    def test_stabilizer_digest_detects_corruption(self):
        from repro.quantum.stabilizer import StabilizerBackend
        backend = StabilizerBackend(2)
        snapshot = backend.snapshot()
        digest = backend.state_digest(snapshot)
        backend.corrupt_snapshot(snapshot, np.random.default_rng(1))
        assert backend.state_digest(snapshot) != digest


class TestMeasurementStallFault:
    def test_detection_and_context(self):
        machine = make_machine(CFC_FMR)
        machine.arm_faults(FaultPlan([FaultSpec("measurement_stall",
                                                shot=1)]))
        with pytest.raises(ShotTimeoutError) as info:
            machine.run(3, use_replay=False)
        error = info.value
        assert error.qubit == 2
        assert error.register == 1
        assert "waits forever" in str(error)

    def test_ladder_and_recovery(self):
        setup = make_setup()
        assembled = setup.assemble_text(CFC_FMR)
        # One stall, then healthy: the interpreter-only retry succeeds
        # because the fault budget is consumed on the first attempt.
        setup.machine.arm_faults(
            FaultPlan([FaultSpec("measurement_stall", shot=0)]))
        traces = setup.run_resilient(assembled, 10)
        assert len(traces) == 10
        assert any("ShotTimeoutError" in step for step in
                   setup.last_engine_stats.degradations)


class TestTimingOverflowFault:
    def test_detection_and_context(self):
        machine = make_machine()
        machine.arm_faults(FaultPlan([FaultSpec("timing_overflow",
                                                shot=0)]))
        with pytest.raises(QueueOverflowError) as info:
            machine.run(2)
        error = info.value
        assert error.queue == "timing"
        assert error.depth == machine.config.timing_queue_depth
        assert error.occupancy >= 0

    def test_ladder_and_recovery(self):
        setup = make_setup()
        assembled = setup.assemble_text(ACTIVE_RESET)
        setup.machine.arm_faults(
            FaultPlan([FaultSpec("timing_overflow", shot=0)]))
        traces = setup.run_resilient(assembled, 10)
        assert len(traces) == 10
        setup.machine.disarm_faults()
        assert len(setup.run_resilient(assembled, 10)) == 10


class TestTreeBitflipFault:
    def test_audit_detects_and_recovers(self):
        machine = make_machine(audit_fraction=1.0, seed=3)
        machine.run(50)  # grow + cache the tree
        machine.arm_faults(FaultPlan([FaultSpec("tree_bitflip")],
                                     seed=9))
        traces = machine.run(120)
        stats = machine.engine_stats
        # The sweep never crashes; the corruption is detected by the
        # shadow audit, reported, and the tree evicted from the
        # cross-run cache.
        assert len(traces) == 120
        assert stats.audit_divergences >= 1
        assert stats.last_audit is not None
        assert stats.last_audit.tree_evicted
        assert stats.last_audit.mismatched_fields
        assert stats.degradations
        assert any("tree_bitflip" in fault
                   for fault in stats.faults_injected)
        assert not machine._tree_cache
        # Clean recovery: disarm, re-run, audits all pass.
        machine.disarm_faults()
        machine.run(50)
        assert machine.engine_stats.audit_divergences == 0

    def test_unaudited_bitflip_still_evicts_cache(self):
        # Without auditing the corruption cannot be *detected*, but the
        # end-of-run hygiene still drops the tampered tree so it cannot
        # leak into later runs.
        machine = make_machine(seed=3)
        machine.run(50)
        machine.arm_faults(FaultPlan([FaultSpec("tree_bitflip")],
                                     seed=9))
        machine.run(20)
        assert not machine._tree_cache


class TestMockExhaustFault:
    def test_run_falls_through_to_plant_and_recovers(self):
        machine = make_machine()
        machine.measurement_unit.inject_mock_results(2, [1] * 6)
        machine.arm_faults(FaultPlan([FaultSpec("mock_exhaust",
                                                shot=1)]))
        traces = machine.run(6, use_replay=False)
        assert len(traces) == 6
        stats = machine.engine_stats
        assert any("mock_exhaust" in fault
                   for fault in stats.faults_injected)
        # The queue was wiped mid-run: everything queued is gone and
        # later measurements sampled the real plant.
        assert machine.measurement_unit.remaining_mock_results(2) == 0
        # Recovery: re-injection works and drains normally.
        machine.disarm_faults()
        machine.measurement_unit.inject_mock_results(2, [0, 1])
        machine.run(1, use_replay=False)
        assert machine.measurement_unit.remaining_mock_results(2) == 0


class TestAdmissionControl:
    def test_dense_request_past_budget_fails_fast(self):
        from repro.core.isa import seventeen_qubit_instantiation
        isa = seventeen_qubit_instantiation()
        plant = QuantumPlant(isa.topology,
                             noise=NoiseModel.noiseless(),
                             rng=np.random.default_rng(0))
        with pytest.raises(ResourceError) as info:
            plant.check_admission("dense")
        error = info.value
        assert error.requested_bytes == 16 * 4 ** 17
        assert error.limit_bytes == plant.memory_limit_bytes
        assert error.num_qubits == 17
        assert "stabilizer" in error.suggestion

    def test_surface17_dense_pin_raises_with_hint(self):
        from repro.experiments.surface_code import \
            run_surface17_experiment
        with pytest.raises(ResourceError) as info:
            run_surface17_experiment(rounds=1, shots=1,
                                     plant_backend="dense")
        assert "plant_backend='stabilizer'" in info.value.suggestion

    def test_ladder_degrades_resource_error_to_stabilizer(self):
        from repro.core.isa import seventeen_qubit_instantiation
        setup = ExperimentSetup.create(
            isa=seventeen_qubit_instantiation(),
            noise=NoiseModel.noiseless(), seed=1,
            plant_backend="dense")
        assembled = setup.assemble_text("""
SMIS S0, {0}
X S0
MEASZ S0
QWAIT 50
STOP
""")
        traces = setup.run_resilient(assembled, 5)
        assert len(traces) == 5
        assert setup.last_plant_backend == "stabilizer"
        assert any("stabilizer" in step for step in
                   setup.last_engine_stats.degradations)
        # The caller's configured pin is restored afterwards.
        assert setup.machine.plant_backend_policy == "dense"


class TestShotTimeBudget:
    def test_watchdog_fires_with_context(self):
        machine = make_machine(
            config=UarchConfig(shot_time_budget_ns=40.0))
        with pytest.raises(ShotTimeoutError) as info:
            machine.run_shot()
        error = info.value
        assert error.budget_ns == 40.0
        assert error.elapsed_ns > 40.0

    def test_instruction_limit_is_structured(self):
        machine = make_machine()
        with pytest.raises(ShotTimeoutError) as info:
            machine.run_shot(max_instructions=3)
        assert info.value.limit == 3
        # Backward compatible with the old bare RuntimeFault catchers.
        assert isinstance(info.value, RuntimeFault)

    def test_invalid_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            UarchConfig(shot_time_budget_ns=0.0)


class TestReplayAudit:
    def test_full_audit_is_divergence_free(self):
        machine = make_machine(audit_fraction=1.0, seed=7)
        machine.run(150)
        stats = machine.engine_stats
        assert stats.replay_audits > 0
        assert stats.replay_audits == stats.segment_cache_hits
        assert stats.audit_divergences == 0
        assert stats.last_audit is not None
        assert stats.last_audit.mismatched_fields == ()

    def test_fractional_audit_cadence(self):
        machine = make_machine(audit_fraction=0.1, seed=7)
        machine.run(300)
        stats = machine.engine_stats
        expected = int(stats.segment_cache_hits * 0.1)
        assert abs(stats.replay_audits - expected) <= 1

    def test_audit_preserves_mock_queue_alignment(self):
        machine = make_machine(audit_fraction=1.0, seed=5)
        machine.measurement_unit.inject_mock_results(
            2, [1, 0] * 20)
        machine.run(10)
        # 2 measurements per shot, 10 shots: exactly 20 consumed
        # whether a shot replayed (view commit) or was shadow-run
        # (natural consumption) — never double-drained.
        assert machine.measurement_unit.remaining_mock_results(2) == 20

    def test_invalid_fraction_rejected(self):
        isa = two_qubit_instantiation()
        plant = QuantumPlant(isa.topology, noise=NoiseModel(),
                             rng=np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            QuMAv2(isa, plant, audit_fraction=1.5)


class TestGuardFaultHierarchy:
    def test_context_attribute_access(self):
        error = GuardFault("boom", qubit=3, depth=7)
        assert error.qubit == 3
        assert error.context == {"qubit": 3, "depth": 7}
        with pytest.raises(AttributeError):
            error.missing_key

    def test_all_guards_are_eqasm_errors(self):
        from repro.core.errors import (
            AdmissionRejectedError,
            JobDeadlineError,
            WorkerPoolError,
        )
        for cls in (ResourceError, ShotTimeoutError, BackendFaultError,
                    QueueOverflowError, JobDeadlineError,
                    AdmissionRejectedError, WorkerPoolError):
            assert issubclass(cls, GuardFault)
            assert issubclass(cls, RuntimeFault)
            assert issubclass(cls, EQASMError)


class TestRetryBackoff:
    """The capped exponential backoff schedule of RetryPolicy."""

    def test_zero_base_never_sleeps(self):
        policy = RetryPolicy()
        assert [policy.delay_for(n) for n in range(1, 6)] == [0.0] * 5

    def test_capped_exponential_growth(self):
        policy = RetryPolicy(max_attempts=8, backoff_s=0.1,
                             backoff_cap_s=0.5, jitter=0.0)
        delays = [policy.delay_for(n) for n in range(1, 8)]
        assert delays[:3] == [0.1, 0.2, 0.4]
        assert all(d == 0.5 for d in delays[3:])  # clamped at the cap

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_s=1.0, backoff_cap_s=100.0,
                             jitter=0.25, seed=42)
        again = RetryPolicy(backoff_s=1.0, backoff_cap_s=100.0,
                            jitter=0.25, seed=42)
        other = RetryPolicy(backoff_s=1.0, backoff_cap_s=100.0,
                            jitter=0.25, seed=43)
        delays = [policy.delay_for(n) for n in range(1, 6)]
        assert delays == [again.delay_for(n) for n in range(1, 6)]
        assert delays != [other.delay_for(n) for n in range(1, 6)]
        for n, delay in enumerate(delays, start=1):
            base = min(1.0 * 2.0 ** (n - 1), 100.0)
            assert base * 0.75 <= delay <= base * 1.25

    def test_jitter_never_exceeds_the_cap(self):
        policy = RetryPolicy(backoff_s=1.0, backoff_cap_s=1.0,
                             jitter=1.0, seed=7)
        assert all(policy.delay_for(n) <= 1.0 for n in range(1, 10))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_cap_s=-1.0)

    def test_ladder_records_per_attempt_delay(self):
        """run_resilient must make the sleep it took visible in the
        structured degradations, not only take it."""
        setup = make_setup()
        assembled = setup.assemble_text(ACTIVE_RESET)
        setup.machine.arm_faults(
            FaultPlan([FaultSpec("timing_overflow", shot=0)]))
        policy = RetryPolicy(backoff_s=0.01, backoff_cap_s=0.02,
                             jitter=0.5, seed=3)
        traces = setup.run_resilient(assembled, 10, policy=policy)
        assert len(traces) == 10
        stats = setup.last_engine_stats
        [rung] = [d for d in stats.degradations if "attempt 1" in d]
        assert "backoff" in rung
        recorded = float(rung.split("backoff ")[1].rstrip("s)"))
        assert abs(recorded - policy.delay_for(1)) < 5e-4

    def test_zero_backoff_ladder_records_no_delay(self):
        setup = make_setup()
        assembled = setup.assemble_text(ACTIVE_RESET)
        setup.machine.arm_faults(
            FaultPlan([FaultSpec("timing_overflow", shot=0)]))
        setup.run_resilient(assembled, 5)
        assert all("backoff" not in d
                   for d in setup.last_engine_stats.degradations)


FRAME_CLIFFORD = """
SMIS S0, {0}
SMIS S2, {2}
SMIS S3, {0, 2}
SMIT T0, {(0, 2)}
QWAIT 10000
H S0
QWAIT 10
CZ T0
QWAIT 10
X90 S2
QWAIT 10
MEASZ S3
QWAIT 50
STOP
"""


def make_frame_machine(seed=0):
    """A frame-eligible machine: Clifford feedback-free program plus
    stochastic Pauli gate noise (the regime that blocks replay and
    selects the Pauli-frame batched engine)."""
    from repro.quantum.noise import DecoherenceModel, GateErrorModel
    isa = two_qubit_instantiation()
    noise = NoiseModel(
        decoherence=DecoherenceModel(t1_ns=1e15, t2_ns=1e15),
        gate_error=GateErrorModel(single_qubit_error=0.03,
                                  two_qubit_error=0.05))
    plant = QuantumPlant(isa.topology, noise=noise,
                         rng=np.random.default_rng(seed))
    machine = QuMAv2(isa, plant)
    machine.load(Assembler(isa).assemble_text(FRAME_CLIFFORD))
    return machine


class TestFrameBatchedChaos:
    """Faults firing *inside* a frame-batched run.

    The frame engine's whole-run state is one reference shot plus its
    recording, so any fault there must degrade the entire run
    gracefully to the per-shot tableau interpreter — every shot still
    delivered, the rung recorded in ``degradations``, the fault in
    ``faults_injected``."""

    def test_clean_frame_run(self):
        machine = make_frame_machine()
        assert not machine.frame_batch_unsupported_reasons()
        traces = machine.run(50)
        stats = machine.engine_stats
        assert machine.last_run_engine == "frame"
        assert stats.engine == "frame"
        assert stats.frame_batched == 50
        assert stats.frame_reference_shots == 1
        assert stats.interpreter_shots == 0
        assert stats.shots_total == 50
        assert len(traces) == 50

    def test_backend_gate_fault_degrades_to_interpreter(self):
        machine = make_frame_machine()
        machine.arm_faults(FaultPlan([FaultSpec("backend_gate",
                                                shot=0)]))
        traces = machine.run(30)
        stats = machine.engine_stats
        # The fault hit the reference shot; the whole run fell back to
        # the per-shot tableau interpreter and still delivered.
        assert len(traces) == 30
        assert machine.last_run_engine == "interpreter"
        assert stats.engine == "interpreter"
        assert stats.frame_batched == 0
        assert stats.interpreter_shots == 30
        assert any(d.startswith("frame -> interpreter")
                   for d in stats.degradations)
        assert any("backend_gate" in f for f in stats.faults_injected)
        assert "BackendFaultError" in stats.fallback_reason

    def test_snapshot_corrupt_fault_degrades_to_interpreter(self):
        machine = make_frame_machine()
        machine.arm_faults(FaultPlan([FaultSpec("snapshot_corrupt",
                                                shot=0)]))
        traces = machine.run(30)
        stats = machine.engine_stats
        # The corruption fired during the post-reference snapshot
        # integrity round-trip; detection (digest mismatch) degraded
        # the run instead of serving from unverified state.
        assert len(traces) == 30
        assert machine.last_run_engine == "interpreter"
        assert stats.frame_batched == 0
        assert stats.interpreter_shots == 30
        assert any(d.startswith("frame -> interpreter")
                   for d in stats.degradations)
        assert any("snapshot_corrupt" in f
                   for f in stats.faults_injected)

    def test_recovery_after_disarm(self):
        machine = make_frame_machine()
        machine.arm_faults(FaultPlan([FaultSpec("backend_gate",
                                                shot=0)]))
        machine.run(10)
        machine.disarm_faults()
        traces = machine.run(20)
        stats = machine.engine_stats
        assert len(traces) == 20
        assert machine.last_run_engine == "frame"
        assert stats.frame_batched == 20
        assert not stats.degradations
        assert not stats.faults_injected

    def test_frame_statistics_match_interpreter_under_no_fault(self):
        """Sanity anchor for the chaos tests: the degraded path and
        the frame path sample the same physics."""
        frame = make_frame_machine(seed=3)
        frame_traces = frame.run(400)
        interp = make_frame_machine(seed=4)
        interp_traces = interp.run(400, use_replay=False)
        rate = lambda traces: sum(
            t.results[-1].reported_result for t in traces) / len(traces)
        assert abs(rate(frame_traces) - rate(interp_traces)) < 0.12
