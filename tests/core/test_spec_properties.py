"""Spec-generated encoding properties for every registered instantiation.

The strategies below are derived *from the encoding spec itself*: for
each registered instantiation, for each single-word format, arbitrary
in-range values for every field (per its codec) must encode and decode
as exact inverses.  A new spec value — a new width, a moved field, a
wider mask — gets property coverage with zero new test code, which is
the point of formats-as-data.  Subsumes the hand-enumerated width
tests in ``test_encoding_widths.py`` and extends them to the 192-bit
surface-49 instantiation.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.encoding import InstructionDecoder, InstructionEncoder
from repro.core.isa import (
    forty_nine_qubit_instantiation,
    seven_qubit_instantiation,
    seventeen_qubit_instantiation,
    two_qubit_instantiation,
)
from repro.core.isaspec.bindings import FORMAT_BINDINGS
from repro.core.instructions import Bundle, BundleOperation
from repro.core.registers import ComparisonFlag

ISAS = {
    isa.name: isa
    for isa in (
        seven_qubit_instantiation(),
        seventeen_qubit_instantiation(),
        forty_nine_qubit_instantiation(),
        two_qubit_instantiation(),
    )
}

CODERS = {name: (InstructionEncoder(isa), InstructionDecoder(isa))
          for name, isa in ISAS.items()}

FORMAT_CASES = [(isa_name, fmt.name)
                for isa_name, isa in ISAS.items()
                for fmt in isa.encoding_spec.formats]


def field_strategy(isa, field):
    """An in-range value strategy for one spec field, per its codec."""
    if field.codec == "uint":
        return st.integers(0, (1 << field.width) - 1)
    if field.codec in ("int", "branch_offset"):
        half = 1 << (field.width - 1)
        return st.integers(-half, half - 1)
    if field.codec == "condition":
        return st.sampled_from(sorted(ComparisonFlag))
    if field.codec == "qubit_mask":
        return st.sets(st.sampled_from(isa.topology.qubits),
                       min_size=1).map(frozenset)
    if field.codec == "pair_mask":
        pairs = [pair.as_tuple() for pair in isa.topology.pairs]
        return st.sets(st.sampled_from(pairs), min_size=1).map(frozenset)
    if field.codec == "sreg":
        return st.integers(0, min(1 << field.width,
                                  isa.num_single_qubit_target_registers)
                           - 1)
    if field.codec == "treg":
        return st.integers(0, min(1 << field.width,
                                  isa.num_two_qubit_target_registers)
                           - 1)
    raise AssertionError(f"no strategy for codec {field.codec!r}")


@pytest.mark.parametrize("isa_name,format_name", FORMAT_CASES)
@given(data=st.data())
@settings(max_examples=25, deadline=None)
def test_format_roundtrips_in_range_values(isa_name, format_name, data):
    isa = ISAS[isa_name]
    encoder, decoder = CODERS[isa_name]
    fmt = isa.encoding_spec.format_named(format_name)
    cls, fixed = FORMAT_BINDINGS[format_name]
    kwargs = dict(fixed)
    for field in fmt.fields:
        kwargs[field.attr] = data.draw(field_strategy(isa, field),
                                       label=field.name)
    instruction = cls(**kwargs)
    word = encoder.encode(instruction)
    assert 0 <= word < (1 << isa.instruction_width)
    # Single-word formats never set the bundle flag bit.
    assert not (word >> isa.encoding_spec.bundle.flag_bit) & 1
    decoded = decoder.decode(word)
    assert decoded == instruction
    assert encoder.encode(decoded) == word


_SINGLE_OPS = ["I", "X", "Y", "X90", "Y90", "XM90", "YM90", "H",
               "MEASZ", "C_X"]


@pytest.mark.parametrize("isa_name", sorted(ISAS))
@given(data=st.data())
@settings(max_examples=25, deadline=None)
def test_bundle_roundtrips_at_every_width(isa_name, data):
    isa = ISAS[isa_name]
    encoder, decoder = CODERS[isa_name]
    bundle_spec = isa.encoding_spec.bundle
    operations = []
    for index in range(len(bundle_spec.slots)):
        name = data.draw(st.sampled_from(["QNOP", "CZ"] + _SINGLE_OPS),
                         label=f"slot {index}")
        if name == "QNOP":
            operations.append(BundleOperation(name, None))
        elif name == "CZ":
            td = data.draw(st.integers(
                0, isa.num_two_qubit_target_registers - 1))
            operations.append(BundleOperation(name, ("T", td)))
        else:
            sd = data.draw(st.integers(
                0, isa.num_single_qubit_target_registers - 1))
            operations.append(BundleOperation(name, ("S", sd)))
    bundle = Bundle(operations=tuple(operations),
                    pi=data.draw(st.integers(0, isa.max_pi)),
                    explicit_pi=True)
    word = encoder.encode(bundle)
    assert (word >> bundle_spec.flag_bit) & 1
    decoded = decoder.decode(word)
    assert decoded == bundle
    assert encoder.encode(decoded) == word
