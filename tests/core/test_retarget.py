"""Tests for timing stripping and cross-platform retargeting."""

import pytest

from repro.core import (
    Assembler,
    AssemblyError,
    Program,
    extract_semantics,
    retarget_program,
    seven_qubit_instantiation,
    two_qubit_instantiation,
)
from repro.core.timeline import build_timeline

FIG3_TEXT = """
SMIS S0, {0}
SMIS S2, {2}
SMIS S7, {0, 2}
QWAIT 10000
0, Y S7
1, X90 S0 | X S2
1, MEASZ S7
QWAIT 50
"""


@pytest.fixture(scope="module")
def two_qubit_isa():
    return two_qubit_instantiation()


@pytest.fixture(scope="module")
def seven_qubit_isa():
    return seven_qubit_instantiation()


class TestExtractSemantics:
    def test_fig3_semantics(self, two_qubit_isa):
        program = Program.from_text(FIG3_TEXT)
        circuit = extract_semantics(program, two_qubit_isa)
        names = [op.name for op in circuit]
        # Timing stripped, order preserved, SOMQ expanded.
        assert names == ["Y", "Y", "X90", "X", "MEASZ", "MEASZ"]

    def test_qubit_map_renames(self, two_qubit_isa):
        program = Program.from_text(FIG3_TEXT)
        circuit = extract_semantics(program, two_qubit_isa,
                                    qubit_map={0: 0, 2: 1})
        assert circuit.used_qubits() == (0, 1)

    def test_feedback_program_rejected(self, two_qubit_isa):
        program = Program.from_text("""
        SMIS S2, {2}
        MEASZ S2
        FMR R0, Q2
        """)
        with pytest.raises(AssemblyError):
            extract_semantics(program, two_qubit_isa)

    def test_branch_program_rejected(self, two_qubit_isa):
        program = Program.from_text("""
        here:
        BR ALWAYS, here
        """)
        with pytest.raises(AssemblyError):
            extract_semantics(program, two_qubit_isa)

    def test_qwaitr_rejected(self, two_qubit_isa):
        program = Program.from_text("QWAITR R0")
        with pytest.raises(AssemblyError):
            extract_semantics(program, two_qubit_isa)

    def test_two_qubit_gates_extracted_as_pairs(self, two_qubit_isa):
        program = Program.from_text("""
        SMIT T0, {(0, 2)}
        CZ T0
        """)
        circuit = extract_semantics(program, two_qubit_isa)
        assert circuit.operations[0].name == "CZ"
        assert circuit.operations[0].qubits == (0, 2)


class TestRetargetProgram:
    def test_two_qubit_to_seven_qubit(self, two_qubit_isa,
                                      seven_qubit_isa):
        # The two-qubit chip's qubits {0, 2} exist on the surface-7
        # chip with (0, 2)... but (0, 2) is not an allowed pair there;
        # map onto the allowed pair (2, 0) endpoints instead.
        program = Program.from_text(FIG3_TEXT)
        ported = retarget_program(program, two_qubit_isa,
                                  seven_qubit_isa,
                                  qubit_map={0: 0, 2: 3})
        # Program assembles for the new instantiation.
        assembled = Assembler(seven_qubit_isa).assemble_program(ported)
        assert len(assembled.words) > 0
        # And its timeline carries the same operations.
        timeline = build_timeline(seven_qubit_isa, ported.instructions)
        names = sorted(op.name for _, op in timeline.all_operations())
        assert names == ["MEASZ", "X", "X90", "Y"]

    def test_retarget_preserves_operation_multiset(self, two_qubit_isa,
                                                   seven_qubit_isa):
        program = Program.from_text(FIG3_TEXT)
        before = extract_semantics(program, two_qubit_isa)
        ported = retarget_program(program, two_qubit_isa,
                                  seven_qubit_isa,
                                  qubit_map={0: 1, 2: 4})
        after = extract_semantics(ported, seven_qubit_isa)
        assert sorted(op.name for op in before) == \
            sorted(op.name for op in after)

    def test_cz_retarget_respects_topology(self, two_qubit_isa,
                                           seven_qubit_isa):
        program = Program.from_text("""
        SMIT T0, {(2, 0)}
        CZ T0
        """)
        # (2, 0) is allowed on both chips: identity map works.
        ported = retarget_program(program, two_qubit_isa,
                                  seven_qubit_isa)
        Assembler(seven_qubit_isa).assemble_program(ported)

    def test_illegal_pair_rejected(self, two_qubit_isa,
                                   seven_qubit_isa):
        program = Program.from_text("""
        SMIT T0, {(0, 2)}
        CZ T0
        """)
        # (0, 2) exists on the two-qubit chip but maps to qubits (0, 6)
        # which are not coupled on surface-7.
        with pytest.raises(AssemblyError):
            retarget_program(program, two_qubit_isa, seven_qubit_isa,
                             qubit_map={0: 0, 2: 6})

    def test_unknown_qubit_rejected(self, seven_qubit_isa,
                                    two_qubit_isa):
        program = Program.from_text("""
        SMIS S0, {5}
        X S0
        """)
        # Qubit 5 exists on surface-7 but not on the two-qubit chip.
        with pytest.raises(AssemblyError):
            retarget_program(program, seven_qubit_isa, two_qubit_isa)

    def test_retargeted_program_runs(self, two_qubit_isa,
                                     seven_qubit_isa):
        import numpy as np
        from repro.quantum import NoiseModel, QuantumPlant
        from repro.uarch import QuMAv2
        program = Program.from_text(FIG3_TEXT)
        ported = retarget_program(program, two_qubit_isa,
                                  seven_qubit_isa,
                                  qubit_map={0: 1, 2: 4},
                                  initialize_cycles=200)
        assembled = Assembler(seven_qubit_isa).assemble_program(ported)
        plant = QuantumPlant(seven_qubit_isa.topology,
                             noise=NoiseModel.noiseless(),
                             rng=np.random.default_rng(0))
        machine = QuMAv2(seven_qubit_isa, plant)
        machine.load(assembled)
        trace = machine.run_shot()
        # Y then X on qubit 4 -> back to |0>; Y then X90 on qubit 1 ->
        # equal superposition measured as 0 or 1.
        assert trace.last_result(4) == 0
        assert trace.last_result(1) in (0, 1)
