"""Tests for the assembler: validation, bundle splitting, label
resolution, encode/disassemble round trips."""

import pytest

from repro.core.assembler import Assembler, Disassembler
from repro.core.errors import AssemblyError
from repro.core.instructions import (
    Br,
    Bundle,
    BundleOperation,
    QWait,
    SMIS,
)
from repro.core.isa import seven_qubit_instantiation, two_qubit_instantiation
from repro.core.program import Program
from repro.core.registers import ComparisonFlag


@pytest.fixture(scope="module")
def isa():
    return seven_qubit_instantiation()


@pytest.fixture(scope="module")
def assembler(isa):
    return Assembler(isa)


class TestValidation:
    def test_unknown_operation_rejected(self, assembler):
        with pytest.raises(Exception):
            assembler.assemble_text("WIBBLE S0")

    def test_gpr_out_of_range(self, assembler):
        with pytest.raises(AssemblyError):
            assembler.assemble_text("LDI R32, 1")

    def test_off_chip_qubit_in_smis(self, assembler):
        with pytest.raises(Exception):
            assembler.assemble_text("SMIS S0, {9}")

    def test_illegal_pair_rejected(self, assembler):
        # (0, 6) is not an edge of the surface-7 chip.
        with pytest.raises(Exception):
            assembler.assemble_text("SMIT T0, {(0, 6)}")

    def test_conflicting_pairs_rejected(self, assembler):
        # Edges (2,0) and (0,3) share qubit 0 — invalid T register value
        # (Section 4.3).
        with pytest.raises(Exception):
            assembler.assemble_text("SMIT T0, {(2, 0), (0, 3)}")

    def test_fmr_unknown_qubit(self, assembler):
        with pytest.raises(AssemblyError):
            assembler.assemble_text("FMR R0, Q9")

    def test_two_qubit_op_with_s_register(self, assembler):
        with pytest.raises(AssemblyError):
            assembler.assemble_text("CZ S0")

    def test_single_qubit_op_with_t_register(self, assembler):
        with pytest.raises(AssemblyError):
            assembler.assemble_text("X T0")

    def test_undefined_label(self, assembler):
        with pytest.raises(AssemblyError):
            assembler.assemble_text("BR ALWAYS, nowhere")

    def test_qwait_too_large(self, assembler):
        with pytest.raises(AssemblyError):
            assembler.assemble_text(f"QWAIT {1 << 20}")

    def test_error_message_includes_instruction(self, assembler):
        with pytest.raises(AssemblyError) as excinfo:
            assembler.assemble_text("NOP\nLDI R32, 1")
        assert "LDI" in str(excinfo.value)


class TestBundleSplitting:
    def test_narrow_bundle_untouched(self, assembler):
        program = Program.from_text("1, X90 S0 | X S2")
        split = assembler.split_bundles(program)
        assert len(split.instructions) == 1

    def test_wide_bundle_split(self, assembler):
        # Paper example (Section 3.4.2): three ops at VLIW width 2
        # become two instructions, the second with PI 0 + QNOP fill.
        program = Program.from_text("3, X S5 | H S6 | CZ T3")
        split = assembler.split_bundles(program)
        assert len(split.instructions) == 2
        first, second = split.instructions
        assert isinstance(first, Bundle) and isinstance(second, Bundle)
        assert first.pi == 3
        assert [op.name for op in first.operations] == ["X", "H"]
        assert second.pi == 0
        assert [op.name for op in second.operations] == ["CZ", "QNOP"]

    def test_five_ops_become_three_words(self, assembler):
        text = "1, X S0 | X S1 | X S2 | X S3 | X S4"
        program = Program.from_text(text)
        split = assembler.split_bundles(program)
        assert len(split.instructions) == 3
        assert split.instructions[2].operations[1].name == "QNOP"

    def test_oversized_pi_hoisted_to_qwait(self, assembler):
        program = Program.from_text("9, X S0")
        split = assembler.split_bundles(program)
        assert isinstance(split.instructions[0], QWait)
        assert split.instructions[0].cycles == 9
        assert split.instructions[1].pi == 0

    def test_labels_remapped_after_split(self, assembler):
        text = """
        start:
        1, X S0 | X S1 | X S2
        loop:
        BR ALWAYS, loop
        """
        program = Program.from_text(text)
        split = assembler.split_bundles(program)
        assert split.labels["start"] == 0
        # The wide bundle became 2 words, so "loop" moved to index 2.
        assert split.labels["loop"] == 2

    def test_trailing_label_remapped(self, assembler):
        text = """
        3, X S0 | X S1 | X S2
        end:
        """
        program = Program.from_text(text)
        split = assembler.split_bundles(program)
        assert split.labels["end"] == 2


class TestLabelResolution:
    def test_forward_branch(self, assembler):
        text = """
        BR ALWAYS, target
        NOP
        target:
        STOP
        """
        assembled = assembler.assemble_text(text)
        br = assembled.program.instructions[0]
        assert isinstance(br, Br)
        assert br.target == 2

    def test_backward_branch(self, assembler):
        text = """
        loop:
        NOP
        BR ALWAYS, loop
        """
        assembled = assembler.assemble_text(text)
        br = assembled.program.instructions[1]
        assert br.target == -1

    def test_branch_to_self(self, assembler):
        text = """
        here:
        BR NEVER, here
        """
        assembled = assembler.assemble_text(text)
        assert assembled.program.instructions[0].target == 0

    def test_fig5_cfc_program_assembles(self, assembler):
        text = """
        SMIS S0, {0}
        SMIS S1, {1}
        LDI R0, 1
        MEASZ S1
        QWAIT 30
        FMR R1, Q1
        CMP R1, R0
        BR EQ, eq_path
        ne_path:
        X S0
        BR ALWAYS, next
        eq_path:
        Y S0
        next:
        STOP
        """
        assembled = assembler.assemble_text(text)
        assert len(assembled.words) == 12
        branches = [ins for ins in assembled.program.instructions
                    if isinstance(ins, Br)]
        assert branches[0].target == 3   # BR EQ at 7 -> eq_path at 10
        assert branches[1].target == 2   # BR ALWAYS at 9 -> next at 11


class TestRoundTrip:
    FIG3 = """
    SMIS S0, {0}
    SMIS S2, {2}
    SMIS S7, {0, 2}
    QWAIT 10000
    0, Y S7
    1, X90 S0 | X S2
    1, MEASZ S7
    QWAIT 50
    STOP
    """

    def test_fig3_assembles_to_nine_words(self, assembler):
        assembled = assembler.assemble_text(self.FIG3)
        assert len(assembled.words) == 9
        assert all(0 <= word < (1 << 32) for word in assembled.words)

    def test_disassemble_reassemble_fixpoint(self, assembler, isa):
        assembled = assembler.assemble_text(self.FIG3)
        disassembler = Disassembler(isa)
        text = disassembler.disassemble_text(assembled.words)
        reassembled = assembler.assemble_text(text)
        assert reassembled.words == assembled.words

    def test_word_bytes_little_endian(self, assembler):
        assembled = assembler.assemble_text("STOP")
        raw = assembled.word_bytes()
        assert len(raw) == 4
        assert int.from_bytes(raw, "little") == assembled.words[0]

    def test_two_qubit_instantiation_accepts_fig4(self):
        # The Section 5 setup (qubits 0 and 2 only).
        assembler = Assembler(two_qubit_instantiation())
        text = """
        SMIS S2, {2}
        QWAIT 10000
        X90 S2
        MEASZ S2
        QWAIT 50
        C_X S2
        MEASZ S2
        STOP
        """
        assembled = assembler.assemble_text(text)
        assert len(assembled.words) == 8

    def test_two_qubit_instantiation_rejects_qubit_1(self):
        assembler = Assembler(two_qubit_instantiation())
        with pytest.raises(Exception):
            assembler.assemble_text("SMIS S1, {1}")
