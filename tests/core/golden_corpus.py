"""Golden-regression corpus for the instruction encoders.

One representative of *every* instruction class (and both register
kinds of a bundle slot), instantiated per ISA so the chip-dependent
operands (qubit sets, directed pairs, FMR qubit addresses) are legal on
that instantiation's topology.  The checked-in fixtures under
``tests/core/data/golden_words_w{32,64}.json`` were serialized through
the *hand-written* pre-isaspec encoder; ``test_golden_words.py``
asserts the spec-driven path reproduces them byte for byte, which is
what keeps assembled-program caches and replay-tree cache keys stable
across the refactor.

Regenerate (only when the corpus itself changes — never to paper over
an encoding difference) with::

    PYTHONPATH=src:tests python -m core.golden_corpus

run from the repository root.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.instructions import (
    ArithOp,
    Br,
    Bundle,
    BundleOperation,
    Cmp,
    Fbr,
    Fmr,
    Ld,
    Ldi,
    Ldui,
    LogicalOp,
    Nop,
    Not,
    QWait,
    QWaitR,
    SMIS,
    SMIT,
    St,
    Stop,
)
from repro.core.isa import (
    EQASMInstantiation,
    seven_qubit_instantiation,
    seventeen_qubit_instantiation,
)
from repro.core.registers import ComparisonFlag

DATA_DIR = Path(__file__).parent / "data"


def fixture_path(width: int) -> Path:
    return DATA_DIR / f"golden_words_w{width}.json"


def corpus_for(isa: EQASMInstantiation) -> list[tuple[str, object]]:
    """(label, instruction) pairs covering every encodable class."""
    qubits = isa.topology.qubits
    # One low-address pair, one reverse-direction pair (address in the
    # upper half of the mask — past bit 31 on the wide instantiations),
    # and a two-pair mask.
    pair_lo = isa.topology.pairs[0].as_tuple()
    pair_hi = isa.topology.pairs[-1].as_tuple()
    entries: list[tuple[str, object]] = [
        ("nop", Nop()),
        ("stop", Stop()),
        ("cmp", Cmp(rs=1, rt=2)),
        ("br_fwd", Br(condition=ComparisonFlag.EQ, target=5)),
        ("br_back", Br(condition=ComparisonFlag.ALWAYS, target=-3)),
        ("br_min", Br(condition=ComparisonFlag.LTU,
                      target=-(1 << 20))),
        ("fbr", Fbr(condition=ComparisonFlag.LT, rd=9)),
        ("ldi_pos", Ldi(rd=0, imm=(1 << 19) - 1)),
        ("ldi_neg", Ldi(rd=31, imm=-(1 << 19))),
        ("ldui", Ldui(rd=2, imm=0x7FFF, rs=2)),
        ("ld", Ld(rd=3, rt=4, imm=-16)),
        ("st", St(rs=5, rt=6, imm=12)),
        ("fmr_q0", Fmr(rd=7, qubit=qubits[0])),
        ("fmr_qmax", Fmr(rd=1, qubit=qubits[-1])),
        ("and", LogicalOp("AND", rd=1, rs=2, rt=3)),
        ("or", LogicalOp("OR", rd=4, rs=5, rt=6)),
        ("xor", LogicalOp("XOR", rd=7, rs=8, rt=9)),
        ("not", Not(rd=10, rt=11)),
        ("add", ArithOp("ADD", rd=12, rs=13, rt=14)),
        ("sub", ArithOp("SUB", rd=15, rs=16, rt=17)),
        ("qwait_zero", QWait(cycles=0)),
        ("qwait_max", QWait(cycles=(1 << isa.qwait_immediate_width) - 1)),
        ("qwaitr", QWaitR(rs=30)),
        ("smis_one", SMIS(sd=7, qubits=frozenset({qubits[0]}))),
        ("smis_all", SMIS(sd=31, qubits=frozenset(qubits))),
        ("smit_lo", SMIT(td=3, pairs=frozenset({pair_lo}))),
        ("smit_hi", SMIT(td=0, pairs=frozenset({pair_hi}))),
        ("smit_two", SMIT(td=31, pairs=frozenset({pair_lo, pair_hi}))),
        ("bundle_two_single", Bundle(operations=(
            BundleOperation("X90", ("S", 0)),
            BundleOperation("X", ("S", 2))), pi=1)),
        ("bundle_qnop_fill", Bundle(operations=(
            BundleOperation("Y", ("S", 7)),), pi=0)),
        ("bundle_explicit_qnop", Bundle(operations=(
            BundleOperation("MEASZ", ("S", 7)),
            BundleOperation("QNOP", None)), pi=7)),
        ("bundle_two_qubit", Bundle(operations=(
            BundleOperation("CZ", ("T", 3)),
            BundleOperation("QNOP", None)), pi=0)),
        ("bundle_mixed_kinds", Bundle(operations=(
            BundleOperation("CZ", ("T", 31)),
            BundleOperation("Y90", ("S", 31))), pi=2)),
    ]
    return entries


GOLDEN_ISAS = {
    32: seven_qubit_instantiation,
    64: seventeen_qubit_instantiation,
}


def generate(width: int) -> dict:
    """Encode the corpus through whatever encoder is currently live."""
    from repro.core.encoding import InstructionEncoder

    isa = GOLDEN_ISAS[width]()
    encoder = InstructionEncoder(isa)
    words = {}
    for label, instruction in corpus_for(isa):
        word = encoder.encode(instruction)
        words[label] = {
            "assembly": instruction.to_assembly(),
            "word_hex": f"{word:0{width // 4}x}",
        }
    return {
        "instantiation": isa.name,
        "instruction_width": width,
        "words": words,
    }


def main() -> None:
    DATA_DIR.mkdir(exist_ok=True)
    for width in GOLDEN_ISAS:
        path = fixture_path(width)
        path.write_text(json.dumps(generate(width), indent=2) + "\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
