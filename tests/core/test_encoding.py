"""Tests for binary encoding/decoding, including Fig. 8 layouts and
property-based round trips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.encoding import (
    CLASSICAL_OPCODES,
    InstructionDecoder,
    InstructionEncoder,
)
from repro.core.errors import EncodingError
from repro.core.instructions import (
    ArithOp,
    Br,
    Bundle,
    BundleOperation,
    Cmp,
    Fbr,
    Fmr,
    Ld,
    Ldi,
    Ldui,
    LogicalOp,
    Nop,
    Not,
    QWait,
    QWaitR,
    SMIS,
    SMIT,
    St,
    Stop,
)
from repro.core.isa import seven_qubit_instantiation
from repro.core.registers import ComparisonFlag


@pytest.fixture(scope="module")
def isa():
    return seven_qubit_instantiation()


@pytest.fixture(scope="module")
def encoder(isa):
    return InstructionEncoder(isa)


@pytest.fixture(scope="module")
def decoder(isa):
    return InstructionDecoder(isa)


class TestFig8Layouts:
    """Bit-exact checks of the quantum-instruction formats."""

    def test_smis_layout(self, encoder):
        word = encoder.encode(SMIS(sd=7, qubits=frozenset({0, 2})))
        assert (word >> 31) == 0
        assert (word >> 25) & 0x3F == CLASSICAL_OPCODES["SMIS"]
        assert (word >> 20) & 0x1F == 7          # Sd
        assert word & 0x7F == 0b0000101          # 7-bit qubit mask

    def test_smit_layout(self, isa, encoder):
        word = encoder.encode(SMIT(td=3, pairs=frozenset({(2, 0)})))
        assert (word >> 31) == 0
        assert (word >> 25) & 0x3F == CLASSICAL_OPCODES["SMIT"]
        assert (word >> 20) & 0x1F == 3          # Td
        assert word & 0xFFFF == 1 << 0           # edge 0 = (2, 0)

    def test_qwait_layout(self, encoder):
        word = encoder.encode(QWait(cycles=10000))
        assert (word >> 25) & 0x3F == CLASSICAL_OPCODES["QWAIT"]
        assert word & 0xFFFFF == 10000           # 20-bit immediate

    def test_qwaitr_layout(self, encoder):
        word = encoder.encode(QWaitR(rs=9))
        assert (word >> 25) & 0x3F == CLASSICAL_OPCODES["QWAITR"]
        assert (word >> 15) & 0x1F == 9          # Rs field

    def test_bundle_layout(self, isa, encoder):
        bundle = Bundle(operations=(
            BundleOperation("X90", ("S", 0)),
            BundleOperation("X", ("S", 2)),
        ), pi=1)
        word = encoder.encode(bundle)
        assert (word >> 31) == 1                 # bundle flag
        assert (word >> 22) & 0x1FF == isa.operations.opcode("X90")
        assert (word >> 17) & 0x1F == 0          # S0
        assert (word >> 8) & 0x1FF == isa.operations.opcode("X")
        assert (word >> 3) & 0x1F == 2           # S2
        assert word & 0x7 == 1                   # PI

    def test_bundle_qnop_fill(self, isa, encoder):
        bundle = Bundle(operations=(BundleOperation("Y", ("S", 7)),), pi=0)
        word = encoder.encode(bundle)
        assert (word >> 8) & 0x1FF == 0          # QNOP opcode in slot 1
        assert word & 0x7 == 0


class TestEncodingErrors:
    def test_qwait_overflow(self, encoder):
        with pytest.raises(EncodingError):
            encoder.encode(QWait(cycles=1 << 20))

    def test_pi_overflow(self, encoder):
        bundle = Bundle(operations=(BundleOperation("X", ("S", 0)),), pi=8)
        with pytest.raises(EncodingError):
            encoder.encode(bundle)

    def test_unresolved_label(self, encoder):
        with pytest.raises(EncodingError):
            encoder.encode(Br(condition=ComparisonFlag.EQ, target="label"))

    def test_over_wide_bundle(self, encoder):
        operations = tuple(BundleOperation("X", ("S", i)) for i in range(3))
        with pytest.raises(EncodingError):
            encoder.encode(Bundle(operations=operations, pi=0))

    def test_wrong_register_kind(self, encoder):
        bundle = Bundle(operations=(BundleOperation("CZ", ("S", 0)),), pi=0)
        with pytest.raises(EncodingError):
            encoder.encode(bundle)

    def test_ldi_immediate_overflow(self, encoder):
        with pytest.raises(EncodingError):
            encoder.encode(Ldi(rd=0, imm=1 << 19))

    def test_qnop_with_register(self, encoder):
        bundle = Bundle(operations=(BundleOperation("QNOP", ("S", 0)),),
                        pi=0)
        with pytest.raises(EncodingError):
            encoder.encode(bundle)

    def test_unknown_operation(self, encoder):
        bundle = Bundle(operations=(BundleOperation("WIBBLE", ("S", 0)),),
                        pi=0)
        with pytest.raises(Exception):
            encoder.encode(bundle)


def roundtrip(encoder, decoder, instruction):
    word = encoder.encode(instruction)
    decoded = decoder.decode(word)
    assert decoded == instruction
    # And the word re-encodes identically.
    assert encoder.encode(decoded) == word


class TestRoundTripExamples:
    def test_classical_instructions(self, encoder, decoder):
        for instruction in [
            Nop(), Stop(),
            Cmp(rs=1, rt=2),
            Br(condition=ComparisonFlag.EQ, target=5),
            Br(condition=ComparisonFlag.ALWAYS, target=-3),
            Fbr(condition=ComparisonFlag.LT, rd=9),
            Ldi(rd=0, imm=1),
            Ldi(rd=1, imm=-1),
            Ldui(rd=2, imm=0x7FFF, rs=2),
            Ld(rd=3, rt=4, imm=-16),
            St(rs=5, rt=6, imm=12),
            Fmr(rd=7, qubit=1),
            LogicalOp("AND", 1, 2, 3),
            LogicalOp("OR", 4, 5, 6),
            LogicalOp("XOR", 7, 8, 9),
            Not(rd=10, rt=11),
            ArithOp("ADD", 12, 13, 14),
            ArithOp("SUB", 15, 16, 17),
        ]:
            roundtrip(encoder, decoder, instruction)

    def test_quantum_instructions(self, encoder, decoder):
        for instruction in [
            QWait(cycles=0),
            QWait(cycles=10000),
            QWaitR(rs=0),
            SMIS(sd=7, qubits=frozenset({0, 2})),
            SMIS(sd=31, qubits=frozenset({0, 1, 2, 3, 4, 5, 6})),
            SMIT(td=3, pairs=frozenset({(2, 0)})),
            SMIT(td=0, pairs=frozenset({(2, 0), (1, 3)})),
        ]:
            roundtrip(encoder, decoder, instruction)

    def test_bundle_roundtrip_with_explicit_qnop(self, encoder, decoder):
        bundle = Bundle(operations=(
            BundleOperation("MEASZ", ("S", 7)),
            BundleOperation("QNOP", None),
        ), pi=1)
        roundtrip(encoder, decoder, bundle)

    def test_two_qubit_bundle(self, encoder, decoder):
        bundle = Bundle(operations=(
            BundleOperation("CZ", ("T", 3)),
            BundleOperation("QNOP", None),
        ), pi=0)
        roundtrip(encoder, decoder, bundle)


# ----------------------------------------------------------------------
# Property-based round trips
# ----------------------------------------------------------------------
_ISA = seven_qubit_instantiation()
_ENC = InstructionEncoder(_ISA)
_DEC = InstructionDecoder(_ISA)

gpr = st.integers(min_value=0, max_value=31)
flag = st.sampled_from(list(ComparisonFlag))
single_names = st.sampled_from(["I", "X", "Y", "X90", "Y90", "XM90",
                                "YM90", "H", "MEASZ", "C_X"])


@st.composite
def classical_instructions(draw):
    choice = draw(st.integers(min_value=0, max_value=9))
    if choice == 0:
        return Ldi(rd=draw(gpr),
                   imm=draw(st.integers(-(1 << 19), (1 << 19) - 1)))
    if choice == 1:
        return Br(condition=draw(flag),
                  target=draw(st.integers(-(1 << 20), (1 << 20) - 1)))
    if choice == 2:
        return Cmp(rs=draw(gpr), rt=draw(gpr))
    if choice == 3:
        return LogicalOp(draw(st.sampled_from(["AND", "OR", "XOR"])),
                         rd=draw(gpr), rs=draw(gpr), rt=draw(gpr))
    if choice == 4:
        return ArithOp(draw(st.sampled_from(["ADD", "SUB"])),
                       rd=draw(gpr), rs=draw(gpr), rt=draw(gpr))
    if choice == 5:
        return Ld(rd=draw(gpr), rt=draw(gpr),
                  imm=draw(st.integers(-(1 << 14), (1 << 14) - 1)))
    if choice == 6:
        return St(rs=draw(gpr), rt=draw(gpr),
                  imm=draw(st.integers(-(1 << 14), (1 << 14) - 1)))
    if choice == 7:
        return Fmr(rd=draw(gpr),
                   qubit=draw(st.sampled_from(_ISA.topology.qubits)))
    if choice == 8:
        return Ldui(rd=draw(gpr), rs=draw(gpr),
                    imm=draw(st.integers(0, (1 << 15) - 1)))
    return Fbr(condition=draw(flag), rd=draw(gpr))


@st.composite
def quantum_instructions(draw):
    choice = draw(st.integers(min_value=0, max_value=3))
    if choice == 0:
        return QWait(cycles=draw(st.integers(0, (1 << 20) - 1)))
    if choice == 1:
        return QWaitR(rs=draw(gpr))
    if choice == 2:
        qubits = draw(st.sets(st.sampled_from(_ISA.topology.qubits),
                              min_size=1))
        return SMIS(sd=draw(gpr), qubits=frozenset(qubits))
    # SMIT with non-conflicting pairs: sample disjoint edges.
    edges = list(_ISA.topology.pairs)
    first = draw(st.sampled_from(edges))
    pairs = {first.as_tuple()}
    return SMIT(td=draw(gpr), pairs=frozenset(pairs))


@st.composite
def bundles(draw):
    num_ops = draw(st.integers(1, 2))
    operations = []
    used = set()
    for _ in range(num_ops):
        name = draw(single_names)
        index = draw(st.integers(0, 31))
        operations.append(BundleOperation(name, ("S", index)))
    return Bundle(operations=tuple(operations),
                  pi=draw(st.integers(0, 7)))


class TestRoundTripProperties:
    @given(classical_instructions())
    @settings(max_examples=200, deadline=None)
    def test_classical_roundtrip(self, instruction):
        roundtrip(_ENC, _DEC, instruction)

    @given(quantum_instructions())
    @settings(max_examples=200, deadline=None)
    def test_quantum_roundtrip(self, instruction):
        roundtrip(_ENC, _DEC, instruction)

    @given(bundles())
    @settings(max_examples=200, deadline=None)
    def test_bundle_words_decode_and_reencode(self, bundle):
        word = _ENC.encode(bundle)
        decoded = _DEC.decode(word)
        assert _ENC.encode(decoded) == word
        # Operation names and PI survive.
        assert decoded.pi == bundle.pi
        names = [op.name for op in decoded.operations
                 if op.name != "QNOP"]
        assert names == [op.name for op in bundle.operations
                         if op.name != "QNOP"]

    @given(st.integers(0, (1 << 32) - 1))
    @settings(max_examples=300, deadline=None)
    def test_decode_never_crashes_unexpectedly(self, word):
        """Decoding arbitrary words either succeeds or raises the
        library's decoding/configuration errors, never e.g. KeyError."""
        from repro.core.errors import EQASMError
        try:
            _DEC.decode(word)
        except EQASMError:
            pass
