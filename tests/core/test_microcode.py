"""Tests for the microcode unit (Q control store)."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.microcode import (
    DeviceKind,
    MicroOpRole,
    MicrocodeUnit,
)
from repro.core.operations import ExecutionFlag, default_operation_set


@pytest.fixture(scope="module")
def unit():
    return MicrocodeUnit(default_operation_set())


class TestTranslation:
    def test_single_qubit_yields_one_micro_op(self, unit):
        micro_ops = unit.translate_name("X90")
        assert len(micro_ops) == 1
        assert micro_ops[0].role is MicroOpRole.SINGLE
        assert micro_ops[0].device is DeviceKind.MICROWAVE

    def test_two_qubit_yields_source_and_target(self, unit):
        # Section 4.3: "two micro-operations (labeled u_op_src and
        # u_op_tgt) for a two-qubit operation".
        micro_ops = unit.translate_name("CZ")
        assert len(micro_ops) == 2
        assert micro_ops[0].role is MicroOpRole.SOURCE
        assert micro_ops[1].role is MicroOpRole.TARGET
        assert all(m.device is DeviceKind.FLUX for m in micro_ops)

    def test_measurement_routed_to_measurement_device(self, unit):
        micro_ops = unit.translate_name("MEASZ")
        assert len(micro_ops) == 1
        assert micro_ops[0].is_measurement
        assert micro_ops[0].device is DeviceKind.MEASUREMENT

    def test_qnop_is_empty(self, unit):
        assert unit.translate(0) == ()

    def test_conditional_flag_propagates(self, unit):
        micro_ops = unit.translate_name("C_X")
        assert micro_ops[0].condition is ExecutionFlag.LAST_ONE

    def test_unconditional_flag(self, unit):
        micro_ops = unit.translate_name("X")
        assert micro_ops[0].condition is ExecutionFlag.ALWAYS

    def test_durations_propagate(self, unit):
        assert unit.translate_name("MEASZ")[0].duration_cycles == 15
        assert unit.translate_name("CZ")[0].duration_cycles == 2
        assert unit.translate_name("X")[0].duration_cycles == 1

    def test_unknown_opcode_raises(self, unit):
        with pytest.raises(ConfigurationError):
            unit.translate(0x1FF)

    def test_codewords_unique(self, unit):
        codewords = []
        for name in unit.operations.names():
            for micro_op in unit.translate_name(name):
                codewords.append(micro_op.codeword)
        assert len(codewords) == len(set(codewords))

    def test_store_covers_every_operation(self, unit):
        assert len(unit) == len(unit.operations)
