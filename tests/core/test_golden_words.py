"""Golden-words regression: the spec-driven encoder must reproduce the
hand-written pre-isaspec encoder byte for byte.

The fixtures under ``data/`` were serialized through the original
``if``/``elif`` encoder at widths 32 and 64 *before* the declarative
``core/isaspec`` refactor landed.  Binary stability is load-bearing:
assembled-program caches and the cross-run replay-tree LRU both key on
the word lists, so any encoding drift would silently invalidate (or,
worse, alias) cached state.  Decode is pinned as the exact inverse on
the same corpus.
"""

import json

import pytest

from repro.core.encoding import InstructionDecoder, InstructionEncoder

from golden_corpus import GOLDEN_ISAS, corpus_for, fixture_path


@pytest.fixture(scope="module", params=sorted(GOLDEN_ISAS))
def golden(request):
    width = request.param
    isa = GOLDEN_ISAS[width]()
    fixture = json.loads(fixture_path(width).read_text())
    assert fixture["instruction_width"] == width
    assert fixture["instantiation"] == isa.name
    return isa, fixture


def test_every_instruction_class_covered(golden):
    isa, fixture = golden
    labels = {label for label, _ in corpus_for(isa)}
    assert labels == set(fixture["words"]), \
        "corpus and fixture drifted; regenerate the fixture"
    classes = {type(ins).__name__ for _, ins in corpus_for(isa)}
    assert classes >= {"Nop", "Stop", "Cmp", "Br", "Fbr", "Ldi", "Ldui",
                       "Ld", "St", "Fmr", "LogicalOp", "Not", "ArithOp",
                       "QWait", "QWaitR", "SMIS", "SMIT", "Bundle"}


def test_encoder_matches_golden_words(golden):
    isa, fixture = golden
    encoder = InstructionEncoder(isa)
    width = fixture["instruction_width"]
    for label, instruction in corpus_for(isa):
        expected = fixture["words"][label]["word_hex"]
        got = f"{encoder.encode(instruction):0{width // 4}x}"
        assert got == expected, \
            f"{label} ({instruction.to_assembly()}): " \
            f"encoded {got}, golden {expected}"


def test_decoder_inverts_golden_words(golden):
    isa, fixture = golden
    decoder = InstructionDecoder(isa)
    encoder = InstructionEncoder(isa)
    for label, instruction in corpus_for(isa):
        word = int(fixture["words"][label]["word_hex"], 16)
        decoded = decoder.decode(word)
        # The decoder materializes QNOP fill slots (so that
        # encode(decode(w)) == w) and always reports an explicit PI;
        # normalize both sides through a re-encode before comparing.
        assert encoder.encode(decoded) == word, \
            f"{label}: decode is not a right-inverse of encode"
        assert encoder.encode(instruction) == encoder.encode(decoded), label


def test_golden_word_bytes_stable(golden):
    """The little-endian byte image (what instruction memory holds and
    what the assembled-program cache hashes) is pinned too."""
    isa, fixture = golden
    encoder = InstructionEncoder(isa)
    size = fixture["instruction_width"] // 8
    image = b"".join(
        encoder.encode(ins).to_bytes(size, "little")
        for _, ins in corpus_for(isa))
    golden_image = b"".join(
        int(entry["word_hex"], 16).to_bytes(size, "little")
        for label, entry in sorted(
            fixture["words"].items(),
            key=lambda kv: [l for l, _ in corpus_for(isa)].index(kv[0])))
    assert image == golden_image
