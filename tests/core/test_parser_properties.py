"""Property-based round trips: instruction -> assembly text -> parse."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.instructions import (
    ArithOp,
    Br,
    Bundle,
    BundleOperation,
    Cmp,
    Fbr,
    Fmr,
    Ld,
    Ldi,
    Ldui,
    LogicalOp,
    Nop,
    Not,
    QWait,
    QWaitR,
    SMIS,
    SMIT,
    St,
    Stop,
)
from repro.core.parser import Parser
from repro.core.program import Program
from repro.core.registers import ComparisonFlag

gpr = st.integers(min_value=0, max_value=31)
flag = st.sampled_from(list(ComparisonFlag))
qubit = st.integers(min_value=0, max_value=6)
op_names = st.sampled_from(["X", "Y", "X90", "MEASZ", "C_X", "H",
                            "X_AMP_3"])


@st.composite
def instructions(draw):
    kind = draw(st.integers(0, 13))
    if kind == 0:
        return Nop()
    if kind == 1:
        return Stop()
    if kind == 2:
        return Cmp(rs=draw(gpr), rt=draw(gpr))
    if kind == 3:
        return Br(condition=draw(flag),
                  target=draw(st.integers(-1000, 1000)))
    if kind == 4:
        return Fbr(condition=draw(flag), rd=draw(gpr))
    if kind == 5:
        return Ldi(rd=draw(gpr),
                   imm=draw(st.integers(-(1 << 19), (1 << 19) - 1)))
    if kind == 6:
        return Ldui(rd=draw(gpr), imm=draw(st.integers(0, (1 << 15) - 1)),
                    rs=draw(gpr))
    if kind == 7:
        return Ld(rd=draw(gpr), rt=draw(gpr),
                  imm=draw(st.integers(-(1 << 14), (1 << 14) - 1)))
    if kind == 8:
        return St(rs=draw(gpr), rt=draw(gpr),
                  imm=draw(st.integers(-(1 << 14), (1 << 14) - 1)))
    if kind == 9:
        return Fmr(rd=draw(gpr), qubit=draw(qubit))
    if kind == 10:
        name = draw(st.sampled_from(["AND", "OR", "XOR"]))
        return LogicalOp(name, rd=draw(gpr), rs=draw(gpr), rt=draw(gpr))
    if kind == 11:
        return QWait(cycles=draw(st.integers(0, (1 << 20) - 1)))
    if kind == 12:
        return SMIS(sd=draw(gpr),
                    qubits=frozenset(draw(st.sets(qubit, min_size=1,
                                                  max_size=7))))
    operations = tuple(
        BundleOperation(name=draw(op_names),
                        register=("S", draw(gpr)))
        for _ in range(draw(st.integers(1, 3))))
    return Bundle(operations=operations, pi=draw(st.integers(0, 7)),
                  explicit_pi=True)


class TestParsePrintRoundTrip:
    @given(instructions())
    @settings(max_examples=300, deadline=None)
    def test_print_then_parse_is_identity(self, instruction):
        text = instruction.to_assembly()
        parsed = Parser().parse_line(text, 1).instruction
        assert parsed == instruction

    @given(st.lists(instructions(), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_program_level_round_trip(self, instruction_list):
        program = Program(instructions=list(instruction_list))
        reparsed = Program.from_text(program.to_assembly())
        assert reparsed.instructions == program.instructions

    def test_smit_round_trip(self):
        # SMIT separately (pairs need valid-looking tuples).
        instruction = SMIT(td=3, pairs=frozenset({(2, 0), (1, 3)}))
        parsed = Parser().parse_line(instruction.to_assembly(), 1)
        assert parsed.instruction == instruction

    def test_implicit_pi_round_trip_semantics(self):
        # "Y S7" prints without PI and reparses with the same default.
        bundle = Bundle(operations=(BundleOperation("Y", ("S", 7)),),
                        pi=1, explicit_pi=False)
        parsed = Parser().parse_line(bundle.to_assembly(), 1).instruction
        assert parsed.pi == 1
        assert parsed.operations == bundle.operations
