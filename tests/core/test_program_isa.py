"""Tests for the Program container and the ISA instantiation."""

import pytest

from repro.core import (
    AssemblyError,
    ConfigurationError,
    EQASMInstantiation,
    Program,
    default_operation_set,
    seven_qubit_instantiation,
    two_qubit_instantiation,
)
from repro.core.instructions import Br, Ldi, Nop
from repro.core.operations import OperationSet
from repro.core.registers import ComparisonFlag
from repro.topology import surface7


class TestProgramContainer:
    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblyError):
            Program.from_text("a:\nNOP\na:\nNOP")

    def test_trailing_label_points_past_end(self):
        program = Program.from_text("NOP\nend:")
        assert program.labels["end"] == 1

    def test_label_on_empty_program(self):
        program = Program.from_text("only:")
        assert program.labels["only"] == 0
        assert len(program) == 0

    def test_has_unresolved_labels(self):
        program = Program.from_text("BR ALWAYS, later\nlater:\nNOP")
        assert program.has_unresolved_labels()
        resolved = program.resolve_labels()
        assert not resolved.has_unresolved_labels()

    def test_resolve_missing_label_raises(self):
        program = Program(instructions=[
            Br(condition=ComparisonFlag.ALWAYS, target="ghost")])
        with pytest.raises(AssemblyError):
            program.resolve_labels()

    def test_numeric_targets_untouched(self):
        program = Program(instructions=[
            Br(condition=ComparisonFlag.ALWAYS, target=-2)])
        resolved = program.resolve_labels()
        assert resolved.instructions[0].target == -2

    def test_collection_protocol(self):
        program = Program()
        program.append(Nop())
        program.extend([Ldi(rd=0, imm=1)])
        assert len(program) == 2
        assert program[1] == Ldi(rd=0, imm=1)
        assert list(iter(program)) == program.instructions

    def test_to_assembly_places_labels(self):
        text = "start:\n    NOP\nend:\n"
        program = Program.from_text(text)
        rendered = program.to_assembly()
        assert rendered.index("start:") < rendered.index("NOP")
        assert rendered.rstrip().endswith("end:")

    def test_round_trip_stability(self):
        text = """
        begin:
        LDI R0, 3
        loop:
        SUB R0, R0, R1
        BR GT, loop
        STOP
        """
        program = Program.from_text(text)
        once = program.to_assembly()
        twice = Program.from_text(once).to_assembly()
        assert once == twice


class TestInstantiation:
    def test_seven_qubit_defaults(self):
        isa = seven_qubit_instantiation()
        assert isa.instruction_width == 32
        assert isa.vliw_width == 2
        assert isa.pi_width == 3          # Config 9: wPI = 3
        assert isa.max_pi == 7
        assert isa.max_qwait == (1 << 20) - 1
        assert isa.cycle_time_ns == 20.0
        assert isa.measurement_cycles == 15

    def test_mask_field_overflow_rejected(self):
        # A chip needing more mask bits than the format provides.
        with pytest.raises(ConfigurationError):
            EQASMInstantiation(
                name="bad", topology=surface7(),
                operations=default_operation_set(),
                qubit_mask_field_width=3)

    def test_pair_mask_overflow_rejected(self):
        with pytest.raises(ConfigurationError):
            EQASMInstantiation(
                name="bad", topology=surface7(),
                operations=default_operation_set(),
                pair_mask_field_width=8)

    def test_opcode_width_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            EQASMInstantiation(
                name="bad", topology=surface7(),
                operations=OperationSet(opcode_width=4))

    def test_vliw_width_positive(self):
        with pytest.raises(ConfigurationError):
            EQASMInstantiation(
                name="bad", topology=surface7(),
                operations=default_operation_set(), vliw_width=0)

    def test_too_many_target_registers_rejected(self):
        with pytest.raises(ConfigurationError):
            EQASMInstantiation(
                name="bad", topology=surface7(),
                operations=default_operation_set(),
                num_single_qubit_target_registers=64)

    def test_ns_cycle_conversions(self):
        isa = seven_qubit_instantiation()
        assert isa.ns_to_cycles(300.0) == 15
        assert isa.ns_to_cycles(30.0) == 2   # rounds to nearest
        assert isa.cycles_to_ns(50) == 1000.0

    def test_qubit_mask_helpers(self):
        isa = seven_qubit_instantiation()
        mask = isa.qubit_mask([0, 2, 6])
        assert mask == 0b1000101
        assert isa.qubits_from_mask(mask) == (0, 2, 6)

    def test_qubit_mask_rejects_off_chip(self):
        isa = two_qubit_instantiation()
        with pytest.raises(ConfigurationError):
            isa.qubit_mask([1])

    def test_pair_mask_helpers(self):
        isa = seven_qubit_instantiation()
        mask = isa.pair_mask([(2, 0), (1, 3)])
        assert isa.pairs_from_mask(mask) == ((1, 3), (2, 0))

    def test_two_qubit_chip_masks_fit_fig8_fields(self):
        # The experiment chip reuses the 7-/16-bit fields with slack.
        isa = two_qubit_instantiation()
        assert isa.topology.qubit_mask_width <= isa.qubit_mask_field_width
        assert isa.topology.pair_mask_width <= isa.pair_mask_field_width
