"""The declarative encoding-spec subsystem: model, validation, CLI.

Covers the spec format contract and validation invariants stated in
``repro/core/isaspec/__init__.py``: JSON round-trips losslessly,
``validate_spec`` catches each class of malformed spec (field overlap,
width coverage, opcode collisions, signed-range sanity, exhaustiveness,
unknown codecs), registered specs match their builder parameters, the
markdown report renders every field, and the ``python -m
repro.core.isaspec`` CLI gates on validation.
"""

import dataclasses
import json

import pytest

from repro.core.errors import ConfigurationError, SpecError
from repro.core.isaspec import (
    EncodingSpec,
    FieldSpec,
    FormatSpec,
    REGISTERED_SPECS,
    build_encoding_spec,
    load_registered_spec,
    render_report,
    validate_spec,
)
from repro.core.isaspec.__main__ import main as isaspec_cli
from repro.core.isaspec.registry import built_spec, spec_path


def family_spec(width: int = 32, **overrides) -> EncodingSpec:
    return build_encoding_spec("test-spec", width, **overrides)


def with_format(spec: EncodingSpec, fmt: FormatSpec) -> EncodingSpec:
    formats = tuple(f if f.name != fmt.name else fmt
                    for f in spec.formats)
    return dataclasses.replace(spec, formats=formats)


class TestModel:
    def test_json_roundtrip_is_lossless(self):
        spec = family_spec()
        assert EncodingSpec.from_json(spec.to_json()) == spec

    def test_registered_files_roundtrip(self):
        for name in REGISTERED_SPECS:
            spec = load_registered_spec(name)
            assert EncodingSpec.from_json(spec.to_json()) == spec

    def test_malformed_json_raises_spec_error(self):
        with pytest.raises(SpecError):
            EncodingSpec.from_json("not json {")
        with pytest.raises(SpecError):
            EncodingSpec.from_json("[1, 2]")
        with pytest.raises(SpecError):
            EncodingSpec.from_json(json.dumps({"name": "x"}))

    def test_bit_range_rendering(self):
        assert FieldSpec("Rd", "rd", 20, 5).bit_range() == "24..20"
        assert FieldSpec("flag", "f", 31, 1).bit_range() == "31"


class TestValidation:
    def test_family_specs_are_valid(self):
        for width in (32, 64, 128):
            assert validate_spec(family_spec(width)) == []

    def test_field_overlap_detected(self):
        # The surface-49 design point: a 6-bit FMR Qi field left at
        # offset 15 collides with Rd at bit 20.
        spec = with_format(
            family_spec(),
            FormatSpec("FMR", 9, (
                FieldSpec("Rd", "rd", 20, 5),
                FieldSpec("Qi", "qubit", 15, 6))))
        problems = validate_spec(spec)
        assert any("overlaps" in p and "Qi" in p for p in problems)
        # Moved to offset 14 (the registered fix) it validates.
        fixed = with_format(
            family_spec(),
            FormatSpec("FMR", 9, (
                FieldSpec("Rd", "rd", 20, 5),
                FieldSpec("Qi", "qubit", 14, 6))))
        assert validate_spec(fixed) == []

    def test_field_overlapping_opcode_detected(self):
        spec = with_format(
            family_spec(),
            FormatSpec("QWAIT", 18, (
                FieldSpec("imm", "cycles", 0, 28),)))
        assert any("overlaps opcode" in p for p in validate_spec(spec))

    def test_field_past_word_end_detected(self):
        spec = with_format(
            family_spec(),
            FormatSpec("QWAIT", 18, (
                FieldSpec("imm", "cycles", 30, 20),)))
        assert any("exceeds" in p for p in validate_spec(spec))

    def test_opcode_collision_detected(self):
        spec = with_format(family_spec(),
                           FormatSpec("STOP", 0))  # NOP's opcode
        assert any("collision" in p for p in validate_spec(spec))

    def test_opcode_overflow_detected(self):
        spec = with_format(family_spec(), FormatSpec("STOP", 64))
        assert any("does not fit" in p for p in validate_spec(spec))

    def test_missing_format_detected(self):
        spec = family_spec()
        spec = dataclasses.replace(
            spec, formats=tuple(f for f in spec.formats
                                if f.name != "QWAIT"))
        assert any("does not cover" in p and "QWAIT" in p
                   for p in validate_spec(spec))

    def test_unknown_format_detected(self):
        spec = family_spec()
        spec = dataclasses.replace(
            spec, formats=spec.formats + (FormatSpec("WIBBLE", 20),))
        assert any("no instruction-class binding" in p
                   for p in validate_spec(spec))

    def test_missing_required_attribute_detected(self):
        spec = with_format(
            family_spec(),
            FormatSpec("CMP", 2, (FieldSpec("Rs", "rs", 15, 5),)))
        assert any("required attribute rt" in p
                   for p in validate_spec(spec))

    def test_unknown_codec_detected(self):
        spec = with_format(
            family_spec(),
            FormatSpec("QWAIT", 18, (
                FieldSpec("imm", "cycles", 0, 20, "bcd"),)))
        assert any("unknown codec" in p for p in validate_spec(spec))

    def test_signed_field_needs_two_bits(self):
        spec = with_format(
            family_spec(),
            FormatSpec("LDI", 5, (
                FieldSpec("Rd", "rd", 20, 5),
                FieldSpec("imm", "imm", 0, 1, "int"))))
        assert any("at least 2 bits" in p for p in validate_spec(spec))

    def test_bad_width_rejected(self):
        with pytest.raises(SpecError, match="multiple of 8"):
            build_encoding_spec("bad", 33)
        with pytest.raises(SpecError, match="at least 32"):
            build_encoding_spec("bad", 24)


class TestRegistry:
    def test_all_registered_specs_load_and_match_builder(self):
        for name in REGISTERED_SPECS:
            assert load_registered_spec(name) == built_spec(name)

    def test_unknown_name_raises(self):
        with pytest.raises(SpecError, match="no registered"):
            load_registered_spec("fig9-128bit")

    def test_surface49_widths(self):
        spec = load_registered_spec("surface49-192bit")
        assert spec.instruction_width == 192
        smit = spec.format_named("SMIT")
        mask = next(f for f in smit.fields if f.attr == "pairs")
        assert mask.width == 160
        qi = next(f for f in spec.format_named("FMR").fields
                  if f.attr == "qubit")
        assert (qi.offset, qi.width) == (14, 6)


class TestInstantiationCrossValidation:
    def test_spec_width_must_match(self):
        from repro.core.operations import default_operation_set
        from repro.core.isa import EQASMInstantiation
        from repro.topology.library import surface7

        with pytest.raises(ConfigurationError, match="does not match"):
            EQASMInstantiation(
                name="bad", topology=surface7(),
                operations=default_operation_set(),
                encoding_spec=load_registered_spec("surface17-64bit"))

    def test_chip_qubits_must_fit_fmr_field(self):
        from repro.core.operations import default_operation_set
        from repro.core.isa import EQASMInstantiation
        from repro.topology.library import surface49

        # 192-bit parameters but the default-built spec keeps the
        # 5-bit Qi field — qubit 48 is unaddressable.
        with pytest.raises(ConfigurationError, match="FMR Qi"):
            EQASMInstantiation(
                name="bad", topology=surface49(),
                operations=default_operation_set(),
                instruction_width=192,
                qubit_mask_field_width=49,
                pair_mask_field_width=160)


class TestReport:
    def test_report_lists_every_format_and_field(self):
        spec = load_registered_spec("fig8-32bit")
        report = render_report(spec)
        for fmt in spec.formats:
            assert f"`{fmt.name}` (opcode {fmt.opcode})" in report
            for field in fmt.fields:
                assert field.name in report
        assert "## Bundle word" in report
        assert "| PI | 2..0 | 3 |" in report

    def test_fig8_positions_in_report(self):
        report = render_report(load_registered_spec("fig8-32bit"))
        assert "| slot 0 q opcode | 30..22 | 9 |" in report
        assert "| slot 1 target reg | 7..3 | 5 |" in report


class TestCli:
    def test_validate_all_ok(self, capsys, tmp_path):
        assert isaspec_cli(["validate", "--all",
                            "--report-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        for name in REGISTERED_SPECS:
            assert f"OK   {spec_path(name)}" in out
            assert (tmp_path / f"{name}.md").exists()

    def test_validate_rejects_broken_spec_file(self, capsys, tmp_path):
        spec = family_spec()
        broken = dataclasses.replace(
            spec, formats=spec.formats + (FormatSpec("STOP2", 1),))
        path = tmp_path / "broken.json"
        path.write_text(broken.to_json())
        assert isaspec_cli(["validate", str(path)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_validate_accepts_good_spec_file(self, capsys, tmp_path):
        path = tmp_path / "good.json"
        path.write_text(family_spec(64).to_json())
        assert isaspec_cli(["validate", str(path)]) == 0

    def test_validate_without_input_errors(self, capsys):
        assert isaspec_cli(["validate"]) == 2
