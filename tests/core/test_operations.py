"""Tests for quantum operation definitions and the operation set."""

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.core.operations import (
    ExecutionFlag,
    OperationKind,
    OperationSet,
    QuantumOperation,
    add_rabi_amplitude_operations,
    default_operation_set,
)
from repro.quantum import gates


class TestQuantumOperation:
    def test_single_qubit_gate(self):
        op = QuantumOperation("X", OperationKind.SINGLE_QUBIT, 1,
                              unitary=gates.X)
        assert not op.is_conditional
        assert not op.uses_two_qubit_target

    def test_two_qubit_gate(self):
        op = QuantumOperation("CZ", OperationKind.TWO_QUBIT, 2,
                              unitary=gates.CZ)
        assert op.uses_two_qubit_target

    def test_gate_requires_unitary(self):
        with pytest.raises(ConfigurationError):
            QuantumOperation("X", OperationKind.SINGLE_QUBIT, 1)

    def test_measurement_rejects_unitary(self):
        with pytest.raises(ConfigurationError):
            QuantumOperation("MEASZ", OperationKind.MEASUREMENT, 15,
                             unitary=gates.X)

    def test_wrong_unitary_shape(self):
        with pytest.raises(ConfigurationError):
            QuantumOperation("X", OperationKind.SINGLE_QUBIT, 1,
                             unitary=gates.CZ)

    def test_non_unitary_rejected(self):
        with pytest.raises(ConfigurationError):
            QuantumOperation("BAD", OperationKind.SINGLE_QUBIT, 1,
                             unitary=np.array([[1, 0], [0, 2.0]]))

    def test_negative_duration(self):
        with pytest.raises(ConfigurationError):
            QuantumOperation("MEASZ", OperationKind.MEASUREMENT, -1)

    def test_conditional(self):
        op = QuantumOperation("C_X", OperationKind.SINGLE_QUBIT, 1,
                              unitary=gates.X,
                              condition=ExecutionFlag.LAST_ONE)
        assert op.is_conditional


class TestOperationSet:
    def test_qnop_is_opcode_zero(self):
        ops = OperationSet()
        assert ops.opcode("QNOP") == 0
        assert ops.name_for_opcode(0) == "QNOP"

    def test_auto_opcode_assignment(self):
        ops = OperationSet()
        first = ops.add(QuantumOperation("X", OperationKind.SINGLE_QUBIT, 1,
                                         unitary=gates.X))
        second = ops.add(QuantumOperation("Y", OperationKind.SINGLE_QUBIT, 1,
                                          unitary=gates.Y))
        assert second == first + 1

    def test_pinned_opcode(self):
        ops = OperationSet()
        ops.add(QuantumOperation("X", OperationKind.SINGLE_QUBIT, 1,
                                 unitary=gates.X), opcode=0x42)
        assert ops.opcode("X") == 0x42

    def test_duplicate_name_rejected(self):
        ops = OperationSet()
        ops.add(QuantumOperation("X", OperationKind.SINGLE_QUBIT, 1,
                                 unitary=gates.X))
        with pytest.raises(ConfigurationError):
            ops.add(QuantumOperation("x", OperationKind.SINGLE_QUBIT, 1,
                                     unitary=gates.X))

    def test_duplicate_opcode_rejected(self):
        ops = OperationSet()
        ops.add(QuantumOperation("X", OperationKind.SINGLE_QUBIT, 1,
                                 unitary=gates.X), opcode=5)
        with pytest.raises(ConfigurationError):
            ops.add(QuantumOperation("Y", OperationKind.SINGLE_QUBIT, 1,
                                     unitary=gates.Y), opcode=5)

    def test_opcode_width_enforced(self):
        ops = OperationSet(opcode_width=2)
        with pytest.raises(ConfigurationError):
            ops.add(QuantumOperation("X", OperationKind.SINGLE_QUBIT, 1,
                                     unitary=gates.X), opcode=4)

    def test_case_insensitive_lookup(self):
        ops = default_operation_set()
        assert ops.get("measz").kind is OperationKind.MEASUREMENT
        assert "x90" in ops
        assert "NOSUCH" not in ops

    def test_unknown_operation(self):
        ops = OperationSet()
        with pytest.raises(ConfigurationError):
            ops.get("H")

    def test_unknown_opcode(self):
        ops = OperationSet()
        with pytest.raises(ConfigurationError):
            ops.name_for_opcode(77)


class TestDefaultOperationSet:
    def setup_method(self):
        self.ops = default_operation_set()

    def test_paper_experiment_set_present(self):
        # Section 5: {I, X, Y, X90, Y90, Xm90, Ym90} + CZ.
        for name in ("I", "X", "Y", "X90", "Y90", "XM90", "YM90", "CZ"):
            assert name in self.ops

    def test_measurement_duration(self):
        # Section 4.2: measurement time of 15 cycles.
        assert self.ops.get("MEASZ").duration_cycles == 15

    def test_gate_durations(self):
        # Section 4.2: 1-cycle single-qubit gates, 2-cycle CZ.
        assert self.ops.get("X").duration_cycles == 1
        assert self.ops.get("CZ").duration_cycles == 2

    def test_conditional_gates(self):
        # Section 3.5: C_X executes iff the last result was |1>.
        assert self.ops.get("C_X").condition is ExecutionFlag.LAST_ONE
        assert self.ops.get("C_Y").condition is ExecutionFlag.LAST_ONE
        assert self.ops.get("C0_X").condition is ExecutionFlag.LAST_ZERO

    def test_opcodes_unique(self):
        opcodes = [self.ops.opcode(name) for name in self.ops.names()]
        assert len(opcodes) == len(set(opcodes))

    def test_two_qubit_targets(self):
        assert self.ops.get("CZ").uses_two_qubit_target
        assert self.ops.get("CNOT").uses_two_qubit_target
        assert not self.ops.get("X").uses_two_qubit_target


class TestRabiOperations:
    def test_registration(self):
        ops = default_operation_set()
        names = add_rabi_amplitude_operations(ops, num_steps=5)
        assert names == [f"X_AMP_{i}" for i in range(5)]
        for name in names:
            assert name in ops

    def test_rotation_angles(self):
        ops = default_operation_set()
        add_rabi_amplitude_operations(ops, num_steps=3,
                                      max_angle=np.pi)
        # Step 0 is identity, last step is a pi rotation (X).
        zero = ops.get("X_AMP_0").unitary
        last = ops.get("X_AMP_2").unitary
        assert gates.gates_equivalent(zero, gates.I)
        assert gates.gates_equivalent(last, gates.X)

    def test_rejects_single_step(self):
        with pytest.raises(ConfigurationError):
            add_rabi_amplitude_operations(default_operation_set(), 1)
