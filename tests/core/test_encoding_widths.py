"""Width-parameterised instruction encoding.

The binary format scales with ``EQASMInstantiation.instruction_width``:
the 32-bit layout must stay bit-for-bit what Fig. 8 defines (pinned by
``test_encoding.py``), and the 64-bit surface-17 instantiation must
round-trip every instruction class through the wider words.
"""

import pytest

from repro.core import (
    Assembler,
    seven_qubit_instantiation,
    seventeen_qubit_instantiation,
)
from repro.core.encoding import InstructionDecoder, InstructionEncoder
from repro.core.errors import ConfigurationError, DecodingError
from repro.core.instructions import SMIS, SMIT

SIXTY_FOUR_BIT_PROGRAM = """
SMIS S1, {9, 10, 11, 12}
SMIS S2, {0, 8, 16}
SMIT T0, {(9, 0), (10, 4)}
SMIT T1, {(16, 7)}
LDI R0, 1
LDI R5, -3
LDUI R5, 77, R5
QWAIT 10000
Y90 S1
QWAIT 5
CZ T0
QWAIT 2
CZ T1
QWAIT 50
MEASZ S1
QWAIT 50
FMR R1, Q9
CMP R1, R0
BR EQ, skip
C_X S1
skip:
ADD R2, R1, R0
ST R2, R0(4)
LD R3, R0(4)
QWAITR R0
QWAIT 50
STOP
"""


class TestSixtyFourBitRoundTrip:
    def test_assemble_decode_reencode(self):
        isa = seventeen_qubit_instantiation()
        assembled = Assembler(isa).assemble_text(SIXTY_FOUR_BIT_PROGRAM)
        decoder = InstructionDecoder(isa)
        encoder = InstructionEncoder(isa)
        decoded = [decoder.decode(word) for word in assembled.words]
        assert [encoder.encode(ins) for ins in decoded] == assembled.words

    def test_word_bytes_are_eight_per_word(self):
        isa = seventeen_qubit_instantiation()
        assembled = Assembler(isa).assemble_text(SIXTY_FOUR_BIT_PROGRAM)
        assert assembled.word_size == 8
        assert len(assembled.word_bytes()) == 8 * len(assembled.words)

    def test_wide_masks_encode(self):
        """Pair addresses past bit 31 — impossible in 32-bit words —
        must encode and decode exactly."""
        isa = seventeen_qubit_instantiation()
        encoder = InstructionEncoder(isa)
        decoder = InstructionDecoder(isa)
        # (8, 16) is the reverse of coupling (16, 8): address >= 24.
        smit = SMIT(td=3, pairs=frozenset({(8, 16)}))
        word = encoder.encode(smit)
        assert word >= (1 << 32)
        round_tripped = decoder.decode(word)
        assert isinstance(round_tripped, SMIT)
        assert round_tripped.td == 3
        assert round_tripped.pairs == smit.pairs

    def test_full_qubit_mask(self):
        isa = seventeen_qubit_instantiation()
        encoder = InstructionEncoder(isa)
        decoder = InstructionDecoder(isa)
        smis = SMIS(sd=31, qubits=frozenset(range(17)))
        round_tripped = decoder.decode(encoder.encode(smis))
        assert round_tripped.sd == 31
        assert round_tripped.qubits == smis.qubits

    def test_word_range_check_scales(self):
        decoder_32 = InstructionDecoder(seven_qubit_instantiation())
        with pytest.raises(DecodingError):
            decoder_32.decode(1 << 32)
        decoder_64 = InstructionDecoder(seventeen_qubit_instantiation())
        decoder_64.decode(1 << 33)   # in range for 64-bit words
        with pytest.raises(DecodingError):
            decoder_64.decode(1 << 64)


class TestInstantiationValidation:
    def test_pair_mask_must_fit_word(self):
        """A 48-bit pair mask cannot fit a 32-bit word — the
        instantiation must reject it up front."""
        from repro.core.isa import EQASMInstantiation
        from repro.core.operations import default_operation_set
        from repro.topology.library import surface17

        with pytest.raises(ConfigurationError, match="widen"):
            EQASMInstantiation(
                name="bad", topology=surface17(),
                operations=default_operation_set(),
                qubit_mask_field_width=17,
                pair_mask_field_width=48)   # default 32-bit words

    def test_32bit_layout_unchanged(self):
        """The width-derived layout must reproduce Fig. 8 at 32 bits:
        Sd/Td at bit 20, bundle slots at 22/17/8/3."""
        isa = seven_qubit_instantiation()
        encoder = InstructionEncoder(isa)
        word = encoder.encode(SMIS(sd=5, qubits=frozenset({0, 2})))
        assert (word >> 20) & 0x1F == 5
        assert word & 0x7F == 0b101
