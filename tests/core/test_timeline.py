"""Tests for the reserve-phase timeline semantics (Section 3.1)."""

import pytest

from repro.core.errors import AssemblyError, OperationConflictError
from repro.core.isa import seven_qubit_instantiation
from repro.core.program import Program
from repro.core.timeline import TimelineBuilder, build_timeline


@pytest.fixture(scope="module")
def isa():
    return seven_qubit_instantiation()


def timeline_of(isa, text, gpr_reader=None):
    program = Program.from_text(text)
    return build_timeline(isa, program.instructions, gpr_reader=gpr_reader)


class TestSection313Example:
    """The worked example of Section 3.1.3: four back-to-back ops."""

    def test_back_to_back_schedule(self, isa):
        text = """
        SMIS S0, {0}
        X S0            # Q_OP0: starts at default PI=1 -> cycle 1
        Y S0            # Q_OP1: default PI=1 -> cycle 2
        QWAITR R0       # register-valued waiting (R0 = 1)
        0, X S0         # Q_OP2 at cycle 3
        QWAIT 0         # equivalent to NOP
        1, Y S0         # Q_OP3 at cycle 4
        """
        timeline = timeline_of(isa, text, gpr_reader=lambda r: 1)
        cycles = [point.cycle for point in timeline.points]
        assert cycles == [1, 2, 3, 4]

    def test_qwait_zero_is_nop(self, isa):
        with_wait = timeline_of(isa, "SMIS S0, {0}\nX S0\nQWAIT 0\n1, Y S0")
        without = timeline_of(isa, "SMIS S0, {0}\nX S0\n1, Y S0")
        assert [p.cycle for p in with_wait.points] == \
            [p.cycle for p in without.points]


class TestFig3Timing:
    def test_fig3_cycles(self, isa):
        text = """
        SMIS S0, {0}
        SMIS S2, {2}
        SMIS S7, {0, 2}
        QWAIT 10000
        0, Y S7
        1, X90 S0 | X S2
        1, MEASZ S7
        QWAIT 50
        """
        timeline = timeline_of(isa, text)
        cycles = [point.cycle for point in timeline.points]
        assert cycles == [10000, 10001, 10002]
        # Measurement lasts 15 cycles: program busy until 10017.
        assert timeline.total_cycles() == 10017

    def test_somq_expansion(self, isa):
        timeline = timeline_of(isa, "SMIS S7, {0, 2}\n0, Y S7")
        ops = timeline.operations_at(0)
        assert len(ops) == 1
        assert ops[0].qubits == (0, 2)
        assert ops[0].touched_qubits() == (0, 2)


class TestTargetRegisterSemantics:
    def test_register_read_at_bundle_time(self, isa):
        # SMIS after the bundle must not retroactively change it.
        text = """
        SMIS S0, {0}
        X S0
        SMIS S0, {1}
        Y S0
        """
        timeline = timeline_of(isa, text)
        first, second = timeline.all_operations()
        assert first[1].qubits == (0,)
        assert second[1].qubits == (1,)

    def test_unset_register_raises(self, isa):
        with pytest.raises(AssemblyError):
            timeline_of(isa, "X S5")

    def test_two_qubit_resolution(self, isa):
        text = """
        SMIT T3, {(1, 3), (2, 0)}
        CZ T3
        """
        timeline = timeline_of(isa, text)
        (cycle, op), = timeline.all_operations()
        assert cycle == 1
        assert sorted(op.pairs) == [(1, 3), (2, 0)]
        assert sorted(op.touched_qubits()) == [0, 1, 2, 3]

    def test_qwaitr_needs_reader(self, isa):
        with pytest.raises(AssemblyError):
            timeline_of(isa, "QWAITR R0")

    def test_qwaitr_negative_rejected(self, isa):
        with pytest.raises(AssemblyError):
            timeline_of(isa, "QWAITR R0", gpr_reader=lambda r: -5)


class TestConflictDetection:
    def test_same_qubit_in_two_bundles_at_same_point(self, isa):
        # Section 4.3: "if two different quantum bundle instructions
        # specify a quantum operation on the same qubit, an error is
        # raised, and the quantum processor stops."
        text = """
        SMIS S0, {0}
        SMIS S1, {0}
        X S0
        0, Y S1
        """
        with pytest.raises(OperationConflictError):
            timeline_of(isa, text)

    def test_same_qubit_in_one_vliw_word(self, isa):
        text = """
        SMIS S0, {0}
        SMIS S1, {0, 1}
        1, X S0 | Y S1
        """
        with pytest.raises(OperationConflictError):
            timeline_of(isa, text)

    def test_single_and_two_qubit_conflict(self, isa):
        text = """
        SMIS S0, {0}
        SMIT T0, {(2, 0)}
        1, X S0 | CZ T0
        """
        with pytest.raises(OperationConflictError):
            timeline_of(isa, text)

    def test_disjoint_operations_allowed(self, isa):
        text = """
        SMIS S0, {0}
        SMIT T0, {(1, 3)}
        1, X S0 | CZ T0
        """
        timeline = timeline_of(isa, text)
        assert len(timeline.operations_at(1)) == 2

    def test_sequential_same_qubit_no_conflict(self, isa):
        text = """
        SMIS S0, {0}
        X S0
        X S0
        """
        timeline = timeline_of(isa, text)
        assert len(timeline.points) == 2


class TestTimelineQueries:
    def test_operations_at_missing_cycle(self, isa):
        timeline = timeline_of(isa, "SMIS S0, {0}\nX S0")
        assert timeline.operations_at(999) == []

    def test_total_cycles_includes_durations(self, isa):
        timeline = timeline_of(isa, "SMIS S0, {0}\nMEASZ S0")
        assert timeline.total_cycles() == 1 + 15

    def test_all_operations_in_time_order(self, isa):
        text = """
        SMIS S0, {0}
        SMIS S1, {1}
        QWAIT 5
        0, X S0
        QWAIT 5
        0, Y S1
        """
        timeline = timeline_of(isa, text)
        cycles = [cycle for cycle, _ in timeline.all_operations()]
        assert cycles == sorted(cycles) == [5, 10]

    def test_current_cycle_property(self, isa):
        builder = TimelineBuilder(isa)
        program = Program.from_text("QWAIT 7\nQWAIT 3")
        builder.feed_program(program.instructions)
        assert builder.current_cycle == 10

    def test_classical_instructions_ignored(self, isa):
        text = """
        LDI R0, 5
        NOP
        SMIS S0, {0}
        CMP R0, R0
        X S0
        """
        timeline = timeline_of(isa, text)
        assert [p.cycle for p in timeline.points] == [1]
