"""Tests for the architectural register files."""

import pytest

from repro.core.errors import InvalidAddressError
from repro.core.operations import ExecutionFlag
from repro.core.registers import (
    ComparisonFlag,
    ComparisonFlags,
    DataMemory,
    ExecutionFlagsFile,
    GPRFile,
    MeasurementResultRegisters,
    TargetRegisterFile,
    to_signed32,
    to_unsigned32,
)


class TestConversions:
    def test_to_signed32(self):
        assert to_signed32(0xFFFFFFFF) == -1
        assert to_signed32(0x7FFFFFFF) == 2147483647
        assert to_signed32(0x80000000) == -2147483648
        assert to_signed32(5) == 5

    def test_to_unsigned32(self):
        assert to_unsigned32(-1) == 0xFFFFFFFF
        assert to_unsigned32(1 << 35) == 0


class TestGPRFile:
    def test_initial_zero(self):
        gprs = GPRFile()
        assert gprs.read(31) == 0

    def test_write_read(self):
        gprs = GPRFile()
        gprs.write(3, 1234)
        assert gprs.read(3) == 1234

    def test_write_wraps_32_bits(self):
        gprs = GPRFile()
        gprs.write(0, -1)
        assert gprs.read(0) == 0xFFFFFFFF
        assert gprs.read_signed(0) == -1

    def test_out_of_range(self):
        gprs = GPRFile()
        with pytest.raises(InvalidAddressError):
            gprs.read(32)
        with pytest.raises(InvalidAddressError):
            gprs.write(-1, 0)

    def test_reset(self):
        gprs = GPRFile()
        gprs.write(5, 99)
        gprs.reset()
        assert gprs.read(5) == 0


class TestComparisonFlags:
    def test_initial_state_compares_zero(self):
        flags = ComparisonFlags()
        assert flags.test(ComparisonFlag.ALWAYS)
        assert flags.test(ComparisonFlag.EQ)
        assert not flags.test(ComparisonFlag.NEVER)

    def test_equal_values(self):
        flags = ComparisonFlags()
        flags.update(7, 7)
        assert flags.test(ComparisonFlag.EQ)
        assert not flags.test(ComparisonFlag.NE)
        assert flags.test(ComparisonFlag.GE)
        assert flags.test(ComparisonFlag.LE)
        assert not flags.test(ComparisonFlag.LT)
        assert not flags.test(ComparisonFlag.GT)

    def test_signed_vs_unsigned(self):
        flags = ComparisonFlags()
        flags.update(to_unsigned32(-1), 1)
        # Signed: -1 < 1.  Unsigned: 0xFFFFFFFF > 1.
        assert flags.test(ComparisonFlag.LT)
        assert flags.test(ComparisonFlag.GTU)
        assert not flags.test(ComparisonFlag.LTU)
        assert not flags.test(ComparisonFlag.GE)

    def test_always_never_invariant(self):
        flags = ComparisonFlags()
        flags.update(3, 9)
        assert flags.test(ComparisonFlag.ALWAYS)
        assert not flags.test(ComparisonFlag.NEVER)


class TestTargetRegisterFile:
    def test_write_read_mask(self):
        regs = TargetRegisterFile("S", 32, 7)
        regs.write(7, 0b0000101)
        assert regs.read(7) == 0b0000101

    def test_mask_width_enforced(self):
        regs = TargetRegisterFile("S", 32, 7)
        with pytest.raises(InvalidAddressError):
            regs.write(0, 1 << 7)

    def test_address_range(self):
        regs = TargetRegisterFile("T", 32, 16)
        with pytest.raises(InvalidAddressError):
            regs.read(32)

    def test_reset(self):
        regs = TargetRegisterFile("S", 4, 7)
        regs.write(1, 3)
        regs.reset()
        assert regs.read(1) == 0


class TestMeasurementResultRegisters:
    def test_validity_counter_lifecycle(self):
        regs = MeasurementResultRegisters((0, 2))
        register = regs.register(2)
        assert register.valid
        register.on_measure_issued()
        assert not register.valid
        register.on_result(1)
        assert register.valid
        assert register.value == 1

    def test_two_pending_measurements(self):
        regs = MeasurementResultRegisters((0,))
        register = regs.register(0)
        register.on_measure_issued()
        register.on_measure_issued()
        register.on_result(0)
        assert not register.valid  # one result still outstanding
        register.on_result(1)
        assert register.valid
        assert register.value == 1

    def test_spurious_result_raises(self):
        regs = MeasurementResultRegisters((0,))
        with pytest.raises(InvalidAddressError):
            regs.register(0).on_result(1)

    def test_unknown_qubit(self):
        regs = MeasurementResultRegisters((0,))
        with pytest.raises(InvalidAddressError):
            regs.register(5)

    def test_reset(self):
        regs = MeasurementResultRegisters((0,))
        register = regs.register(0)
        register.on_measure_issued()
        register.on_result(1)
        regs.reset()
        assert regs.register(0).value == 0
        assert regs.register(0).valid


class TestExecutionFlagsFile:
    def test_always_flag_without_history(self):
        flags = ExecutionFlagsFile((0, 2))
        assert flags.test(0, ExecutionFlag.ALWAYS)
        assert not flags.test(0, ExecutionFlag.LAST_ONE)
        assert not flags.test(0, ExecutionFlag.LAST_ZERO)
        assert not flags.test(0, ExecutionFlag.LAST_TWO_EQUAL)

    def test_last_one(self):
        flags = ExecutionFlagsFile((0,))
        flags.on_result(0, 1)
        assert flags.test(0, ExecutionFlag.LAST_ONE)
        assert not flags.test(0, ExecutionFlag.LAST_ZERO)

    def test_last_zero(self):
        flags = ExecutionFlagsFile((0,))
        flags.on_result(0, 0)
        assert flags.test(0, ExecutionFlag.LAST_ZERO)
        assert not flags.test(0, ExecutionFlag.LAST_ONE)

    def test_last_two_equal(self):
        flags = ExecutionFlagsFile((0,))
        flags.on_result(0, 1)
        assert not flags.test(0, ExecutionFlag.LAST_TWO_EQUAL)
        flags.on_result(0, 1)
        assert flags.test(0, ExecutionFlag.LAST_TWO_EQUAL)
        flags.on_result(0, 0)
        assert not flags.test(0, ExecutionFlag.LAST_TWO_EQUAL)

    def test_per_qubit_independence(self):
        flags = ExecutionFlagsFile((0, 2))
        flags.on_result(0, 1)
        assert flags.test(0, ExecutionFlag.LAST_ONE)
        assert not flags.test(2, ExecutionFlag.LAST_ONE)

    def test_unknown_qubit(self):
        flags = ExecutionFlagsFile((0,))
        with pytest.raises(InvalidAddressError):
            flags.test(9, ExecutionFlag.ALWAYS)

    def test_reset(self):
        flags = ExecutionFlagsFile((0,))
        flags.on_result(0, 1)
        flags.reset()
        assert not flags.test(0, ExecutionFlag.LAST_ONE)


class TestDataMemory:
    def test_load_default_zero(self):
        memory = DataMemory()
        assert memory.load(0) == 0

    def test_store_load(self):
        memory = DataMemory()
        memory.store(4, 0xDEADBEEF)
        assert memory.load(4) == 0xDEADBEEF

    def test_store_wraps(self):
        memory = DataMemory()
        memory.store(0, -1)
        assert memory.load(0) == 0xFFFFFFFF

    def test_unaligned_raises(self):
        memory = DataMemory()
        with pytest.raises(InvalidAddressError):
            memory.load(2)

    def test_out_of_range(self):
        memory = DataMemory(size_bytes=16)
        with pytest.raises(InvalidAddressError):
            memory.store(16, 1)

    def test_reset(self):
        memory = DataMemory()
        memory.store(8, 5)
        memory.reset()
        assert memory.load(8) == 0
