"""Tests for the assembly parser."""

import pytest

from repro.core.errors import ParseError
from repro.core.instructions import (
    ArithOp,
    Br,
    Bundle,
    Cmp,
    Fbr,
    Fmr,
    Ld,
    Ldi,
    Ldui,
    LogicalOp,
    Nop,
    Not,
    QWait,
    QWaitR,
    SMIS,
    SMIT,
    St,
    Stop,
)
from repro.core.parser import Parser, parse_program_text
from repro.core.registers import ComparisonFlag


def parse_one(text):
    line = Parser().parse_line(text, 1)
    assert line.instruction is not None
    return line.instruction


class TestClassicalParsing:
    def test_nop(self):
        assert parse_one("NOP") == Nop()

    def test_stop(self):
        assert parse_one("STOP") == Stop()

    def test_cmp(self):
        assert parse_one("CMP R1, R2") == Cmp(rs=1, rt=2)

    def test_br_label(self):
        assert parse_one("BR EQ, eq_path") == Br(
            condition=ComparisonFlag.EQ, target="eq_path")

    def test_br_numeric_offset(self):
        assert parse_one("BR ALWAYS, -3") == Br(
            condition=ComparisonFlag.ALWAYS, target=-3)

    def test_fbr(self):
        assert parse_one("FBR LT, R4") == Fbr(condition=ComparisonFlag.LT,
                                              rd=4)

    def test_ldi(self):
        assert parse_one("LDI R0, 1") == Ldi(rd=0, imm=1)

    def test_ldi_negative(self):
        assert parse_one("LDI R0, -100") == Ldi(rd=0, imm=-100)

    def test_ldi_hex(self):
        assert parse_one("LDI R0, 0x1F") == Ldi(rd=0, imm=31)

    def test_ldui(self):
        assert parse_one("LDUI R3, 7, R3") == Ldui(rd=3, imm=7, rs=3)

    def test_ld(self):
        assert parse_one("LD R1, R2(8)") == Ld(rd=1, rt=2, imm=8)

    def test_ld_negative_offset(self):
        assert parse_one("LD R1, R2(-4)") == Ld(rd=1, rt=2, imm=-4)

    def test_st(self):
        assert parse_one("ST R5, R6(0)") == St(rs=5, rt=6, imm=0)

    def test_fmr(self):
        assert parse_one("FMR R1, Q1") == Fmr(rd=1, qubit=1)

    def test_logical(self):
        assert parse_one("AND R1, R2, R3") == LogicalOp("AND", 1, 2, 3)
        assert parse_one("OR R1, R2, R3") == LogicalOp("OR", 1, 2, 3)
        assert parse_one("XOR R1, R2, R3") == LogicalOp("XOR", 1, 2, 3)

    def test_not(self):
        assert parse_one("NOT R1, R2") == Not(rd=1, rt=2)

    def test_arith(self):
        assert parse_one("ADD R1, R2, R3") == ArithOp("ADD", 1, 2, 3)
        assert parse_one("SUB R1, R2, R3") == ArithOp("SUB", 1, 2, 3)

    def test_case_insensitive(self):
        assert parse_one("ldi r0, 1") == Ldi(rd=0, imm=1)

    def test_wrong_arity_raises(self):
        with pytest.raises(ParseError):
            parse_one("CMP R1")

    def test_bad_memory_operand(self):
        with pytest.raises(ParseError):
            parse_one("LD R1, 8(R2)")

    def test_bad_flag_name(self):
        with pytest.raises(ParseError):
            parse_one("BR NOSUCH, 2")


class TestWaitingParsing:
    def test_qwait(self):
        assert parse_one("QWAIT 10000") == QWait(cycles=10000)

    def test_qwait_zero(self):
        assert parse_one("QWAIT 0") == QWait(cycles=0)

    def test_qwaitr(self):
        assert parse_one("QWAITR R0") == QWaitR(rs=0)

    def test_qwait_missing_operand(self):
        with pytest.raises(ParseError):
            parse_one("QWAIT")


class TestTargetParsing:
    def test_smis_single(self):
        assert parse_one("SMIS S2, {2}") == SMIS(sd=2, qubits=frozenset({2}))

    def test_smis_multi(self):
        ins = parse_one("SMIS S7, {0, 2}")
        assert ins == SMIS(sd=7, qubits=frozenset({0, 2}))

    def test_smit(self):
        ins = parse_one("SMIT T3, {(1, 3), (2, 4)}")
        assert ins == SMIT(td=3, pairs=frozenset({(1, 3), (2, 4)}))

    def test_smit_single_pair(self):
        ins = parse_one("SMIT T0, {(2, 0)}")
        assert ins == SMIT(td=0, pairs=frozenset({(2, 0)}))

    def test_smis_empty_raises(self):
        with pytest.raises(ParseError):
            parse_one("SMIS S0, {}")

    def test_smis_needs_braces(self):
        with pytest.raises(ParseError):
            parse_one("SMIS S0, 0")

    def test_smit_bad_pair(self):
        with pytest.raises(ParseError):
            parse_one("SMIT T0, {(1, 2, 3)}")


class TestBundleParsing:
    def test_bare_operation_defaults_pi_1(self):
        bundle = parse_one("Y S7")
        assert isinstance(bundle, Bundle)
        assert bundle.pi == 1
        assert not bundle.explicit_pi
        assert bundle.operations[0].name == "Y"
        assert bundle.operations[0].register == ("S", 7)

    def test_explicit_pi(self):
        bundle = parse_one("0, Y S7")
        assert bundle.pi == 0
        assert bundle.explicit_pi

    def test_vliw_bundle(self):
        bundle = parse_one("1, X90 S0 | X S2")
        assert bundle.pi == 1
        assert [op.name for op in bundle.operations] == ["X90", "X"]

    def test_two_qubit_target(self):
        bundle = parse_one("CNOT T3")
        assert bundle.operations[0].register == ("T", 3)

    def test_qnop(self):
        bundle = parse_one("0, CNOT T3 | QNOP")
        assert bundle.operations[1].name == "QNOP"
        assert bundle.operations[1].register is None

    def test_triple_bundle(self):
        bundle = parse_one("2, X S5 | H S7 | CNOT T3")
        assert len(bundle.operations) == 3
        assert bundle.pi == 2

    def test_operation_names_uppercased(self):
        bundle = parse_one("x90 s0")
        assert bundle.operations[0].name == "X90"
        assert bundle.operations[0].register == ("S", 0)

    def test_custom_operation_name(self):
        bundle = parse_one("X_AMP_17 S0")
        assert bundle.operations[0].name == "X_AMP_17"

    def test_conditional_operation(self):
        bundle = parse_one("C_X S2")
        assert bundle.operations[0].name == "C_X"

    def test_negative_pi_raises(self):
        with pytest.raises(ParseError):
            parse_one("-1, X S0")

    def test_empty_slot_raises(self):
        with pytest.raises(ParseError):
            parse_one("X S0 | | Y S1")

    def test_garbage_raises(self):
        with pytest.raises(ParseError):
            parse_one("X S0 Y S1")


class TestLinesAndLabels:
    def test_comment_only_line(self):
        line = Parser().parse_line("# a comment", 1)
        assert line.instruction is None
        assert line.labels == ()

    def test_label_alone(self):
        line = Parser().parse_line("loop:", 1)
        assert line.labels == ("loop",)
        assert line.instruction is None

    def test_label_with_instruction(self):
        line = Parser().parse_line("start: LDI R0, 5", 1)
        assert line.labels == ("start",)
        assert line.instruction == Ldi(rd=0, imm=5)

    def test_trailing_comment(self):
        line = Parser().parse_line("LDI R0, 1 # r0 <- 1", 1)
        assert line.instruction == Ldi(rd=0, imm=1)

    def test_multiple_labels(self):
        line = Parser().parse_line("a: b: NOP", 1)
        assert line.labels == ("a", "b")

    def test_parse_error_carries_line_number(self):
        with pytest.raises(ParseError) as excinfo:
            Parser().parse_text("NOP\nBADLINE ,,,\n")
        assert excinfo.value.line_number == 2


class TestFullListings:
    def test_fig3_allxy_fragment(self):
        text = """
        SMIS S0, {0}
        SMIS S2, {2}
        SMIS S7, {0, 2}
        QWAIT 10000
        0, Y S7
        1, X90 S0 | X S2
        1, MEASZ S7
        QWAIT 50
        """
        lines = parse_program_text(text)
        instructions = [line.instruction for line in lines]
        assert len(instructions) == 8
        assert isinstance(instructions[4], Bundle)
        assert instructions[4].pi == 0

    def test_fig4_active_reset(self):
        text = """
        SMIS S2, {2}
        QWAIT 10000
        X90 S2
        MEASZ S2
        QWAIT 50
        C_X S2
        MEASZ S2
        """
        lines = parse_program_text(text)
        assert len(lines) == 7
        names = [line.instruction.operations[0].name
                 for line in lines
                 if isinstance(line.instruction, Bundle)]
        assert names == ["X90", "MEASZ", "C_X", "MEASZ"]

    def test_fig5_cfc_program(self):
        text = """
        SMIS S0, {0}
        SMIS S1, {1}
        LDI R0, 1
        MEASZ S1
        QWAIT 30
        FMR R1, Q1  # fetch msmt result
        CMP R1, R0  # compare
        BR EQ, eq_path  # jump if R0 == R1
        ne_path:
        X S0
        BR ALWAYS, next
        eq_path:
        Y S0
        next:
        """
        lines = parse_program_text(text)
        labels = [label for line in lines for label in line.labels]
        assert labels == ["ne_path", "eq_path", "next"]
        instructions = [line.instruction for line in lines
                        if line.instruction is not None]
        assert len(instructions) == 11
