"""Tests for AllXY, Rabi, Ising, Grover-sqrt and Grover-2q workloads."""

import numpy as np
import pytest

from repro.quantum import Statevector, gates, zero_state
from repro.workloads.allxy import (
    ALLXY_PAIRS,
    allxy_ideal_staircase,
    allxy_single_qubit_circuit,
    allxy_two_qubit_circuit,
    allxy_two_qubit_expected,
    two_qubit_allxy_steps,
)
from repro.workloads.grover2q import grover2q_circuit, grover2q_ideal_state
from repro.workloads.grover_sqrt import (
    grover_sqrt_circuit,
    multi_controlled_z,
    toffoli,
)
from repro.workloads.ising import ising_circuit
from repro.workloads.rabi import (
    fit_pi_pulse_step,
    rabi_ideal_curve,
    rabi_step_circuit,
)
from repro.compiler.ir import Circuit


def simulate(circuit, num_qubits):
    state = zero_state(num_qubits)
    for op in circuit:
        if op.name == "MEASZ":
            continue
        state.apply_gate(gates.gate_matrix(op.name), op.qubits)
    return state


class TestAllXY:
    def test_21_pairs(self):
        assert len(ALLXY_PAIRS) == 21

    def test_staircase_shape(self):
        staircase = allxy_ideal_staircase()
        assert staircase[:5] == [0.0] * 5
        assert staircase[5:17] == [0.5] * 12
        assert staircase[17:] == [1.0] * 4

    @pytest.mark.parametrize("step", range(21))
    def test_pairs_produce_expected_population(self, step):
        circuit = allxy_single_qubit_circuit(step)
        state = simulate(circuit, 1)
        expected = ALLXY_PAIRS[step][2]
        assert state.measure_probability_one(0) == pytest.approx(
            expected, abs=1e-9)

    def test_two_qubit_steps_interleaving(self):
        steps = two_qubit_allxy_steps()
        assert len(steps) == 42
        # Qubit A repeats each pair twice; qubit B cycles the sequence.
        assert [a for a, _ in steps[:6]] == [0, 0, 1, 1, 2, 2]
        assert [b for _, b in steps[:4]] == [0, 1, 2, 3]
        assert steps[21][1] == 0  # second half restarts B's sequence

    @pytest.mark.parametrize("step", [0, 7, 21, 29, 41])
    def test_two_qubit_circuit_populations(self, step):
        circuit = allxy_two_qubit_circuit(step, qubit_a=0, qubit_b=1,
                                          num_qubits=2)
        state = simulate(circuit, 2)
        expected_a, expected_b = allxy_two_qubit_expected(step)
        assert state.measure_probability_one(0) == pytest.approx(
            expected_a, abs=1e-9)
        assert state.measure_probability_one(1) == pytest.approx(
            expected_b, abs=1e-9)


class TestRabi:
    def test_ideal_curve_endpoints(self):
        curve = rabi_ideal_curve(21)
        assert curve[0] == pytest.approx(0.0)
        assert curve[10] == pytest.approx(1.0)  # pi pulse at midpoint
        assert curve[-1] == pytest.approx(0.0, abs=1e-9)

    def test_fit_pi_pulse(self):
        curve = rabi_ideal_curve(21)
        assert fit_pi_pulse_step(curve) == 10

    def test_step_circuit(self):
        circuit = rabi_step_circuit(3, qubit=2)
        assert [op.name for op in circuit] == ["X_AMP_3", "MEASZ"]


class TestIsing:
    def test_paper_statistics(self):
        circuit = ising_circuit()
        assert circuit.num_qubits == 7
        # "< 1 % two-qubit gates"
        assert circuit.two_qubit_fraction() < 0.01
        assert circuit.two_qubit_count() > 0

    def test_layers_are_parallel(self):
        from repro.compiler import schedule_asap
        from repro.core.operations import default_operation_set
        circuit = ising_circuit(steps=20, include_measurement=False)
        schedule = schedule_asap(circuit, default_operation_set())
        assert schedule.average_parallelism() > 5.0

    def test_layer_name_diversity(self):
        # A layer must hold several distinct names (limits SOMQ).
        circuit = ising_circuit(steps=1, coupling_every=0,
                                include_measurement=False)
        first_layer = [op.name for op in circuit][:7]
        assert 4 <= len(set(first_layer)) <= 6


class TestGroverSqrt:
    def test_paper_statistics(self):
        circuit = grover_sqrt_circuit()
        assert circuit.num_qubits == 8
        # "~39 % two-qubit gates"
        assert 0.3 < circuit.two_qubit_fraction() < 0.45

    def test_sequential_nature(self):
        from repro.compiler import schedule_asap
        from repro.core.operations import default_operation_set
        circuit = grover_sqrt_circuit(iterations=1,
                                      include_measurement=False)
        schedule = schedule_asap(circuit, default_operation_set())
        assert schedule.average_parallelism() < 2.5

    def test_toffoli_truth_table(self):
        for a in (0, 1):
            for b in (0, 1):
                circuit = Circuit("t", 3)
                if a:
                    circuit.add("X", 0)
                if b:
                    circuit.add("X", 1)
                toffoli(circuit, 0, 1, 2)
                state = simulate(circuit, 3)
                expected_target = a & b
                assert state.measure_probability_one(2) == pytest.approx(
                    expected_target, abs=1e-9)

    def test_multi_controlled_z_phase(self):
        # CCZ via the ladder: |111...> acquires a minus sign.
        circuit = Circuit("t", 4)
        for qubit in (0, 1, 2):
            circuit.add("X", qubit)
        multi_controlled_z(circuit, [0, 1], 2, [3])
        state = simulate(circuit, 4)
        amplitude = state.amplitudes[0b1110]
        assert amplitude.real == pytest.approx(-1.0, abs=1e-9)

    def test_mcz_work_qubits_restored(self):
        circuit = Circuit("t", 6)
        for qubit in (0, 1, 2, 3):
            circuit.add("X", qubit)
        multi_controlled_z(circuit, [0, 1, 2], 3, [4, 5])
        state = simulate(circuit, 6)
        # Work qubits 4, 5 end in |0>.
        assert state.measure_probability_one(4) == pytest.approx(0.0,
                                                                 abs=1e-9)
        assert state.measure_probability_one(5) == pytest.approx(0.0,
                                                                 abs=1e-9)


class TestGrover2Q:
    @pytest.mark.parametrize("marked", range(4))
    def test_ideal_output_is_marked_state(self, marked):
        state = grover2q_ideal_state(marked)
        assert state.probability(marked) == pytest.approx(1.0)

    @pytest.mark.parametrize("marked", range(4))
    def test_native_equals_gate_level(self, marked):
        native = grover2q_circuit(marked, qubit_a=0, qubit_b=1,
                                  num_qubits=2, native=True)
        state = simulate(native, 2)
        assert state.probability(marked) == pytest.approx(1.0)

    def test_native_uses_experiment_gate_set(self):
        circuit = grover2q_circuit(0, native=True)
        allowed = {"I", "X", "Y", "X90", "Y90", "XM90", "YM90", "CZ",
                   "MEASZ"}
        assert {op.name for op in circuit} <= allowed

    def test_two_cz_gates(self):
        circuit = grover2q_circuit(3)
        assert circuit.two_qubit_count() == 2

    def test_invalid_marked_state(self):
        with pytest.raises(ValueError):
            grover2q_circuit(4)
