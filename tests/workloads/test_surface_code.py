"""Tests for the distance-2 surface code workload and experiment."""

import pytest

from repro.compiler import schedule_asap
from repro.core.operations import default_operation_set
from repro.experiments.surface_code import run_surface_code_experiment
from repro.quantum import NoiseModel
from repro.topology import surface7
from repro.workloads.surface_code import (
    ANCILLAS,
    DATA_QUBITS,
    Syndrome,
    Z_CHECKS,
    X_CHECK,
    expected_z_syndrome,
    surface_code_circuit,
)


class TestLayout:
    def test_partition_covers_chip(self):
        assert sorted(DATA_QUBITS + ANCILLAS) == list(range(7))

    def test_all_check_couplings_are_allowed_pairs(self):
        chip = surface7()
        for ancilla, data in Z_CHECKS.items():
            for qubit in data:
                assert chip.is_allowed_pair(ancilla, qubit), \
                    (ancilla, qubit)
        for ancilla, data in X_CHECK.items():
            for qubit in data:
                assert chip.is_allowed_pair(ancilla, qubit), \
                    (ancilla, qubit)

    def test_z_checks_are_disjoint(self):
        used = []
        for ancilla, data in Z_CHECKS.items():
            used.extend((ancilla,) + data)
        assert len(used) == len(set(used))


class TestCircuit:
    def test_round_structure(self):
        circuit = surface_code_circuit(rounds=1)
        names = [op.name for op in circuit]
        assert names.count("MEASZ") == 2      # two Z-ancillas
        assert names.count("CZ") == 4

    def test_x_check_included(self):
        circuit = surface_code_circuit(rounds=1, include_x_check=True)
        names = [op.name for op in circuit]
        assert names.count("MEASZ") == 3
        assert names.count("CZ") == 8

    def test_error_injection(self):
        circuit = surface_code_circuit(rounds=2, error=("X", 0),
                                       error_after_round=0)
        x_on_data = [op for op in circuit
                     if op.name == "X" and op.qubits == (0,)]
        assert len(x_on_data) == 1

    def test_z_error_compiles_to_pulse_pair(self):
        circuit = surface_code_circuit(rounds=1, error=("Z", 5))
        names_on_5 = [op.name for op in circuit if op.qubits == (5,)]
        assert names_on_5[-2:] == ["Y", "X"]

    def test_error_must_hit_data(self):
        with pytest.raises(ValueError):
            surface_code_circuit(rounds=1, error=("X", 3))

    def test_rounds_are_parallel(self):
        ops = default_operation_set()
        schedule = schedule_asap(surface_code_circuit(rounds=3), ops)
        # The two Z-checks run concurrently: parallelism well above 1.
        assert schedule.average_parallelism() > 1.5


class TestSyndromes:
    def test_expected_syndrome_mapping(self):
        assert expected_z_syndrome(None) == Syndrome(0, 0)
        assert expected_z_syndrome(("X", 0)) == Syndrome(1, 0)
        assert expected_z_syndrome(("X", 5)) == Syndrome(1, 0)
        assert expected_z_syndrome(("X", 1)) == Syndrome(0, 1)
        assert expected_z_syndrome(("X", 6)) == Syndrome(0, 1)
        # Z errors commute with Z-checks: silent.
        assert expected_z_syndrome(("Z", 0)) == Syndrome(0, 0)

    def test_fired(self):
        assert not Syndrome(0, 0).fired()
        assert Syndrome(1, 0).fired()
        assert Syndrome(0, 1).fired()


class TestDetectionExperiment:
    def test_clean_rounds_silent(self):
        result = run_surface_code_experiment(rounds=2, shots=10)
        for round_index in range(2):
            assert result.detection_fraction(round_index) == 0.0

    @pytest.mark.parametrize("qubit", DATA_QUBITS)
    def test_x_error_detected_on_every_data_qubit(self, qubit):
        result = run_surface_code_experiment(
            rounds=2, error=("X", qubit), error_after_round=0, shots=10)
        assert result.detection_fraction(0) == 0.0   # before injection
        assert result.detection_fraction(1) == 1.0   # after injection
        expected = expected_z_syndrome(("X", qubit))
        for shot in result.syndromes_per_shot:
            assert shot[1] == expected

    def test_z_error_invisible_to_z_checks(self):
        # Detecting Z errors needs the X-check — a distance-2 property
        # check: Z on data is silent in the Z syndrome.
        result = run_surface_code_experiment(
            rounds=2, error=("Z", 0), error_after_round=0, shots=10)
        assert result.detection_fraction(1) == 0.0

    def test_syndrome_persists_across_rounds(self):
        result = run_surface_code_experiment(
            rounds=3, error=("X", 6), error_after_round=0, shots=8)
        # An uncorrected X error keeps firing in every later round.
        assert result.detection_fraction(1) == 1.0
        assert result.detection_fraction(2) == 1.0

    def test_looped_binary_matches_compiled_clean_rounds(self):
        """The counted-loop syndrome binary: quiet Z-checks on clean
        |0000> data, every round — and the looping program genuinely
        rides the replay engine (the dataflow pass resolved the trip
        count; a conservative analysis would not block it, but it
        would at least mis-bound the measurement count)."""
        from repro.experiments.surface_code import (
            run_looped_surface_code_experiment,
        )
        result = run_looped_surface_code_experiment(rounds=3, shots=12)
        assert result.rounds == 3
        for round_index in range(3):
            assert result.detection_fraction(round_index) == 0.0
        stats = result.engine_stats
        assert stats.engine == "replay"
        assert stats.fallback_reason is None
        assert stats.bounded_loops == 1
        assert stats.replay_shots > 0

    def test_noisy_hardware_blurs_detection(self):
        # With the calibrated noise model, clean rounds show a real
        # false-positive rate (two 9.5 %-error readouts plus four
        # 7 %-error CZs per round) and the true error is still clearly
        # separated — the regime actual distance-2 demos operate in.
        result = run_surface_code_experiment(
            rounds=2, error=("X", 0), error_after_round=0, shots=200,
            noise=NoiseModel(), seed=31)
        false_positive = result.detection_fraction(0)
        detection = result.detection_fraction(1)
        assert false_positive < 0.45
        assert detection > 0.7
        assert detection > false_positive + 0.3
