"""Distance-5 surface-49 workload and topology checks.

The layout comes from the generic rotated-surface generator
(:func:`repro.topology.library.rotated_surface_checks`), so the first
class here pins the generator against the hand-written distance-3
tables before trusting its distance-5 output.
"""

import pytest

from repro.core import forty_nine_qubit_instantiation
from repro.topology.library import (
    SURFACE17_X_CHECKS,
    SURFACE17_Z_CHECKS,
    SURFACE49_DATA_QUBITS,
    SURFACE49_X_CHECKS,
    SURFACE49_Z_CHECKS,
    rotated_surface_checks,
    surface49,
)
from repro.workloads.surface49 import (
    SURFACE49_Z_ANCILLAS,
    Syndrome49,
    expected_z_syndrome49,
    surface49_circuit,
)


class TestRotatedSurfaceGenerator:
    def test_distance3_reproduces_surface17_tables(self):
        """The generator at d=3 must give the hand-written surface-17
        stabilizers (ancilla numbering may differ within each group)."""
        z_checks, x_checks = rotated_surface_checks(3)
        assert set(z_checks) | set(x_checks) == set(range(9, 17))
        assert (sorted(z_checks.values())
                == sorted(SURFACE17_Z_CHECKS.values()))
        assert (sorted(x_checks.values())
                == sorted(SURFACE17_X_CHECKS.values()))

    def test_distance5_counts(self):
        assert len(SURFACE49_Z_CHECKS) == 12
        assert len(SURFACE49_X_CHECKS) == 12
        weights = sorted(len(data) for checks in (SURFACE49_Z_CHECKS,
                                                  SURFACE49_X_CHECKS)
                         for data in checks.values())
        assert weights.count(2) == 8       # boundary checks
        assert weights.count(4) == 16      # bulk plaquettes

    def test_stabilizers_commute(self):
        """Every Z check must share an even number of qubits with every
        X check — the commutation condition of the stabilizer group."""
        for z_data in SURFACE49_Z_CHECKS.values():
            for x_data in SURFACE49_X_CHECKS.values():
                assert len(set(z_data) & set(x_data)) % 2 == 0


class TestSurface49Topology:
    def test_counts(self):
        chip = surface49()
        assert chip.num_qubits == 49
        assert chip.num_pairs == 160        # 80 couplings x 2 directions
        assert chip.pair_mask_width == 160

    def test_every_data_qubit_covered(self):
        for qubit in SURFACE49_DATA_QUBITS:
            z_count = sum(qubit in data
                          for data in SURFACE49_Z_CHECKS.values())
            x_count = sum(qubit in data
                          for data in SURFACE49_X_CHECKS.values())
            assert 1 <= z_count <= 2
            assert 1 <= x_count <= 2

    def test_all_couplings_are_allowed_pairs(self):
        chip = surface49()
        for checks in (SURFACE49_Z_CHECKS, SURFACE49_X_CHECKS):
            for ancilla, data in checks.items():
                for qubit in data:
                    assert chip.is_allowed_pair(ancilla, qubit)
                    assert chip.is_allowed_pair(qubit, ancilla)

    def test_every_qubit_has_a_feedline(self):
        chip = surface49()
        for qubit in chip.qubits:
            assert chip.feedline_of(qubit) is not None

    def test_single_x_errors_detected_and_mostly_separated(self):
        """Every single data X error fires the Z syndrome.  The Z half
        alone leaves a few boundary-row pairs degenerate (qubits whose
        only Z check is the same plaquette); the X checks, which a Z
        error would fire symmetrically, complete the separation."""
        syndromes = {}
        for qubit in SURFACE49_DATA_QUBITS:
            syndrome = expected_z_syndrome49(("X", qubit))
            assert syndrome.fired()
            syndromes.setdefault(syndrome.z_checks, []).append(qubit)
        assert len(syndromes) == 21           # 25 qubits, 4 merged pairs
        for qubits in syndromes.values():
            if len(qubits) == 1:
                continue
            assert len(qubits) == 2
            # The full stabilizer group tells the pair apart: their X
            # memberships differ.
            first, second = qubits
            x_of = lambda q: {a for a, d in SURFACE49_X_CHECKS.items()
                              if q in d}
            assert x_of(first) != x_of(second)


class TestSurface49Circuit:
    def test_round_structure(self):
        circuit = surface49_circuit(rounds=2)
        measurements = [op for op in circuit.operations
                        if op.name == "MEASZ"]
        assert len(measurements) == 24        # 12 Z ancillas x 2 rounds
        assert circuit.num_qubits == 49

    def test_x_checks_optional(self):
        circuit = surface49_circuit(rounds=1, include_x_checks=True)
        measurements = [op for op in circuit.operations
                        if op.name == "MEASZ"]
        assert len(measurements) == 24        # 12 Z + 12 X ancillas

    def test_error_validation(self):
        with pytest.raises(ValueError, match="data qubits"):
            surface49_circuit(rounds=1, error=("X", 25))
        with pytest.raises(ValueError, match="at least one round"):
            surface49_circuit(rounds=0)

    def test_compiles_and_assembles_on_the_192bit_instantiation(self):
        from repro.compiler.codegen import EQASMCodeGenerator
        from repro.compiler.scheduler import schedule_asap
        from repro.core.assembler import Assembler

        isa = forty_nine_qubit_instantiation()
        circuit = surface49_circuit(rounds=1)
        schedule = schedule_asap(circuit, isa.operations)
        program = EQASMCodeGenerator(isa).generate(schedule)
        assembled = Assembler(isa).assemble_program(program)
        assert assembled.word_size == 24
        assert all(0 <= word < (1 << 192) for word in assembled.words)
        # The wide pair masks must actually use the extra width.
        assert any(word >= (1 << 64) for word in assembled.words)


class TestSyndrome49:
    def test_bit_lookup(self):
        syndrome = Syndrome49(z_checks=((25, 1), (26, 0)))
        assert syndrome.bit(25) == 1
        assert syndrome.bit(26) == 0
        with pytest.raises(KeyError):
            syndrome.bit(37)

    def test_fired(self):
        assert Syndrome49(z_checks=((25, 0), (26, 1))).fired()
        assert not Syndrome49(z_checks=((25, 0), (26, 0))).fired()

    def test_expected_syndrome_covers_all_z_ancillas(self):
        syndrome = expected_z_syndrome49(None)
        assert tuple(a for a, _ in syndrome.z_checks) \
            == SURFACE49_Z_ANCILLAS
        assert not syndrome.fired()
