"""Tests for the Clifford group and RB sequence generation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.quantum import gates, zero_state
from repro.workloads.clifford import (
    PRIMITIVES,
    average_primitives_per_clifford,
    clifford_from_unitary,
    clifford_group,
    compose,
    inverse,
    random_clifford_sequence,
    recovery_clifford,
)
from repro.workloads.rb import (
    rb_dse_circuit,
    rb_primitive_count,
    rb_sequence_circuit,
    survival_reference,
)


class TestCliffordGroup:
    def test_group_has_24_elements(self):
        assert len(clifford_group()) == 24

    def test_average_primitives_is_paper_value(self):
        # Section 5: "the gate count is increased by 1.875 on average".
        assert average_primitives_per_clifford() == pytest.approx(1.875)

    def test_decompositions_reproduce_unitaries(self):
        for clifford in clifford_group():
            matrix = np.eye(2, dtype=complex)
            for name in clifford.decomposition:
                matrix = PRIMITIVES[name] @ matrix
            assert gates.gates_equivalent(matrix, clifford.unitary())

    def test_all_elements_distinct(self):
        keys = set()
        for clifford in clifford_group():
            found = clifford_from_unitary(clifford.unitary())
            keys.add(found.index)
        assert len(keys) == 24

    def test_paulis_are_members(self):
        for pauli in (gates.I, gates.X, gates.Y, gates.Z):
            clifford_from_unitary(pauli)

    def test_hadamard_is_member(self):
        clifford_from_unitary(gates.H)

    def test_t_gate_is_not_member(self):
        from repro.core.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            clifford_from_unitary(gates.T)

    def test_compose_matches_matrix_product(self):
        group = clifford_group()
        rng = np.random.default_rng(1)
        for _ in range(30):
            a = group[int(rng.integers(24))]
            b = group[int(rng.integers(24))]
            composed = compose(a, b)
            expected = b.unitary() @ a.unitary()
            assert gates.gates_equivalent(composed.unitary(), expected)

    def test_inverse_property(self):
        identity = clifford_from_unitary(np.eye(2))
        for element in clifford_group():
            assert compose(element, inverse(element)).index == \
                identity.index

    @given(st.integers(min_value=1, max_value=30),
           st.integers(min_value=0, max_value=2 ** 32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_recovery_returns_to_identity(self, length, seed):
        rng = np.random.default_rng(seed)
        sequence = random_clifford_sequence(length, rng)
        recovery = recovery_clifford(sequence)
        state = zero_state(1)
        for clifford in sequence + [recovery]:
            state.apply_gate(clifford.unitary(), (0,))
        assert state.probability(0) == pytest.approx(1.0)


class TestRBSequences:
    def test_circuit_structure(self):
        rng = np.random.default_rng(0)
        circuit = rb_sequence_circuit(10, rng)
        names = [op.name for op in circuit]
        assert names[-1] == "MEASZ"
        assert all(name in PRIMITIVES or name == "MEASZ"
                   for name in names)

    def test_circuit_without_measurement(self):
        rng = np.random.default_rng(0)
        circuit = rb_sequence_circuit(5, rng, include_measurement=False)
        assert all(op.name != "MEASZ" for op in circuit)

    def test_noiseless_sequence_returns_to_zero(self):
        rng = np.random.default_rng(3)
        circuit = rb_sequence_circuit(20, rng, include_measurement=False)
        state = zero_state(1)
        for op in circuit:
            state.apply_gate(gates.gate_matrix(op.name), (0,))
        assert state.probability(0) == pytest.approx(1.0)

    def test_primitive_count(self):
        rng = np.random.default_rng(0)
        sequence = random_clifford_sequence(100, rng)
        count = rb_primitive_count(sequence)
        assert count == sum(c.num_primitives for c in sequence)
        # Large samples concentrate near 1.875 per Clifford.
        assert count / 100 == pytest.approx(1.875, abs=0.3)

    def test_dse_circuit_shape(self):
        circuit = rb_dse_circuit(num_qubits=3, cliffords_per_qubit=20,
                                 seed=1)
        assert circuit.num_qubits == 3
        assert circuit.two_qubit_count() == 0
        assert circuit.used_qubits() == (0, 1, 2)

    def test_dse_circuit_deterministic(self):
        a = rb_dse_circuit(num_qubits=2, cliffords_per_qubit=10, seed=5)
        b = rb_dse_circuit(num_qubits=2, cliffords_per_qubit=10, seed=5)
        assert [str(op) for op in a] == [str(op) for op in b]

    def test_survival_reference_decays(self):
        values = [survival_reference(k, 0.01) for k in (0, 10, 100)]
        assert values[0] == pytest.approx(1.0)
        assert values[0] > values[1] > values[2] > 0.5
