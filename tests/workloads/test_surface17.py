"""Distance-3 surface-17 workload and topology checks."""

import pytest

from repro.core import seventeen_qubit_instantiation
from repro.topology.library import (
    SURFACE17_DATA_QUBITS,
    SURFACE17_X_CHECKS,
    SURFACE17_Z_CHECKS,
    surface17,
)
from repro.workloads.surface17 import (
    Syndrome17,
    expected_z_syndrome17,
    surface17_circuit,
)


class TestSurface17Topology:
    def test_counts(self):
        chip = surface17()
        assert chip.num_qubits == 17
        assert chip.num_pairs == 48          # 24 couplings x 2 directions
        assert chip.pair_mask_width == 48

    def test_every_data_qubit_in_two_or_three_checks(self):
        """Rotated d-3 layout: every data qubit sits in 1-2 Z checks and
        1-2 X checks, 2-4 stabilizers in total."""
        for qubit in SURFACE17_DATA_QUBITS:
            z_count = sum(qubit in data
                          for data in SURFACE17_Z_CHECKS.values())
            x_count = sum(qubit in data
                          for data in SURFACE17_X_CHECKS.values())
            assert 1 <= z_count <= 2
            assert 1 <= x_count <= 2

    def test_all_couplings_are_allowed_pairs(self):
        chip = surface17()
        for checks in (SURFACE17_Z_CHECKS, SURFACE17_X_CHECKS):
            for ancilla, data in checks.items():
                for qubit in data:
                    assert chip.is_allowed_pair(ancilla, qubit)
                    assert chip.is_allowed_pair(qubit, ancilla)

    def test_every_qubit_has_a_feedline(self):
        chip = surface17()
        for qubit in chip.qubits:
            assert chip.feedline_of(qubit) is not None

    def test_distinct_single_errors_have_distinct_syndromes(self):
        """Distance 3: the full (Z + X) syndrome separates every
        single-qubit X error; the Z half alone separates most."""
        syndromes = {}
        for qubit in SURFACE17_DATA_QUBITS:
            key = expected_z_syndrome17(("X", qubit)).z_checks
            syndromes.setdefault(key, []).append(qubit)
            assert expected_z_syndrome17(("X", qubit)).fired()
        # Every X error is detected, and at least 6 distinct Z-syndrome
        # patterns exist across the 9 data qubits.
        assert len(syndromes) >= 6


class TestSurface17Circuit:
    def test_round_structure(self):
        circuit = surface17_circuit(rounds=2)
        measurements = [op for op in circuit.operations
                        if op.name == "MEASZ"]
        assert len(measurements) == 8          # 4 Z ancillas x 2 rounds
        assert circuit.num_qubits == 17

    def test_x_checks_optional(self):
        circuit = surface17_circuit(rounds=1, include_x_checks=True)
        measurements = [op for op in circuit.operations
                        if op.name == "MEASZ"]
        assert len(measurements) == 8          # 4 Z + 4 X ancillas

    def test_error_validation(self):
        with pytest.raises(ValueError, match="data qubits"):
            surface17_circuit(rounds=1, error=("X", 9))
        with pytest.raises(ValueError, match="at least one round"):
            surface17_circuit(rounds=0)

    def test_compiles_and_assembles_on_the_64bit_instantiation(self):
        from repro.compiler.codegen import EQASMCodeGenerator
        from repro.compiler.scheduler import schedule_asap
        from repro.core.assembler import Assembler

        isa = seventeen_qubit_instantiation()
        circuit = surface17_circuit(rounds=1)
        schedule = schedule_asap(circuit, isa.operations)
        program = EQASMCodeGenerator(isa).generate(schedule)
        assembled = Assembler(isa).assemble_program(program)
        assert assembled.word_size == 8
        assert all(0 <= word < (1 << 64) for word in assembled.words)
        # Wider than 32 bits must actually be used (the pair masks).
        assert any(word >= (1 << 32) for word in assembled.words)


class TestSyndrome17:
    def test_bit_lookup(self):
        syndrome = Syndrome17(z_checks=((9, 1), (10, 0)))
        assert syndrome.bit(9) == 1
        assert syndrome.bit(10) == 0
        with pytest.raises(KeyError):
            syndrome.bit(11)

    def test_fired(self):
        assert Syndrome17(z_checks=((9, 0), (10, 1))).fired()
        assert not Syndrome17(z_checks=((9, 0), (10, 0))).fired()
