"""Tests for the T1 / Ramsey coherence experiments."""

import pytest

from repro.experiments.coherence import (
    format_coherence_report,
    run_ramsey_experiment,
    run_t1_experiment,
)
from repro.quantum.noise import (
    DecoherenceModel,
    GateErrorModel,
    NoiseModel,
    ReadoutErrorModel,
)
from repro.workloads.coherence import (
    echo_program,
    ramsey_program,
    ramsey_reference,
    sweep_waits,
    t1_program,
    t1_reference,
)


def fast_decay_model(t1_ns=2000.0, t2_ns=1500.0):
    """A short-coherence model so sweeps decay within few us."""
    return NoiseModel(
        decoherence=DecoherenceModel(t1_ns=t1_ns, t2_ns=t2_ns),
        readout=ReadoutErrorModel(0.0, 0.0),
        gate_error=GateErrorModel(0.0, 0.0))


class TestPrograms:
    def test_t1_program_structure(self):
        program = t1_program(2, wait_cycles=100)
        text = program.to_assembly()
        assert "QWAIT 100" in text
        assert "X S0" in text
        assert "MEASZ S0" in text

    def test_ramsey_program_structure(self):
        text = ramsey_program(2, wait_cycles=64).to_assembly()
        assert text.count("X90 S0") == 2
        assert "QWAIT 64" in text

    def test_echo_program_has_refocusing_pulse(self):
        text = echo_program(2, wait_cycles=100).to_assembly()
        # Two half-waits around the refocusing X (plus the trailing
        # measurement wait, which happens to be 50 cycles as well).
        assert text.count("QWAIT 50") == 3
        assert "0, X S0" in text
        assert text.count("X90 S0") == 2

    def test_sweep_waits_monotone(self):
        waits = sweep_waits(4096, 8)
        assert waits == sorted(set(waits))
        assert waits[0] >= 1

    def test_sweep_needs_two_points(self):
        with pytest.raises(ValueError):
            sweep_waits(100, 1)


class TestReferences:
    def test_t1_reference(self):
        assert t1_reference(0.0, 1000.0) == pytest.approx(1.0)
        assert t1_reference(1000.0, 1000.0) == pytest.approx(
            pytest.approx(0.3679, abs=1e-3))

    def test_ramsey_reference_limits(self):
        model = DecoherenceModel(t1_ns=2000.0, t2_ns=1500.0)
        assert ramsey_reference(0.0, model) == pytest.approx(1.0)
        # Long waits converge to the fully dephased value 0.5 plus a
        # small T1 relaxation correction.
        assert ramsey_reference(50000.0, model) == pytest.approx(
            0.5, abs=0.05)


class TestExperiments:
    def test_t1_fit_recovers_configured_constant(self):
        result = run_t1_experiment(max_wait_cycles=1024, points=8,
                                   noise=fast_decay_model())
        assert result.configured_constant_ns == 2000.0
        assert result.relative_error < 0.05

    def test_ramsey_fit_recovers_t2(self):
        result = run_ramsey_experiment(max_wait_cycles=1024, points=8,
                                       noise=fast_decay_model())
        assert result.configured_constant_ns == 1500.0
        assert result.relative_error < 0.15

    def test_default_noise_model_t1(self):
        result = run_t1_experiment(max_wait_cycles=8192, points=6)
        assert result.fitted_constant_ns == pytest.approx(40000.0,
                                                          rel=0.05)

    def test_population_decays_monotonically(self):
        result = run_t1_experiment(max_wait_cycles=1024, points=8,
                                   noise=fast_decay_model())
        assert all(a >= b - 1e-9 for a, b in
                   zip(result.populations, result.populations[1:]))

    def test_report_formatting(self):
        result = run_t1_experiment(max_wait_cycles=256, points=4,
                                   noise=fast_decay_model())
        report = format_coherence_report("T1", result)
        assert "fitted T1" in report
