"""Tests for the experiment report formatters (bench output surfaces)."""

import pytest

from repro.experiments.allxy import AllXYResult, format_allxy_table
from repro.experiments.cfc import LatencyResult, format_latency_report
from repro.experiments.dse import DSETable, format_dse_table
from repro.experiments.grover import GroverResult, format_grover_report
from repro.experiments.rb_timing import (
    RBCurve,
    RBTimingResult,
    format_rb_table,
)
from repro.experiments.analysis import RBFit
from repro.experiments.reset import ResetResult, format_reset_report


class TestFormatters:
    def test_reset_report(self):
        result = ResetResult(shots=100, ground_probability=0.83,
                             conditional_executed_fraction=0.5,
                             readout_fidelity=0.905)
        report = format_reset_report(result)
        assert "83.0%" in report
        assert "82.7%" in report  # the paper reference
        assert result.matches_paper()

    def test_reset_matches_paper_tolerance(self):
        off = ResetResult(shots=10, ground_probability=0.70,
                          conditional_executed_fraction=0.5,
                          readout_fidelity=0.9)
        assert not off.matches_paper()

    def test_latency_report(self):
        result = LatencyResult(fast_conditional_ns=92.0, cfc_ns=312.0)
        report = format_latency_report(result)
        assert "92 ns" in report
        assert "312 ns" in report
        assert result.fast_conditional_matches()
        assert result.cfc_matches()

    def test_latency_mismatch_detection(self):
        result = LatencyResult(fast_conditional_ns=250.0, cfc_ns=900.0)
        assert not result.fast_conditional_matches()
        assert not result.cfc_matches()

    def test_grover_report(self):
        result = GroverResult(fidelities={0: 0.86, 1: 0.85, 2: 0.87,
                                          3: 0.84})
        report = format_grover_report(result)
        assert "85.5%" in report  # the average
        assert result.matches_paper()

    def test_rb_table(self):
        fit = RBFit(amplitude=0.5, decay=0.996, offset=0.5)
        curve = RBCurve(interval_ns=20, lengths=[1, 10],
                        survivals=[0.99, 0.95], fit=fit)
        result = RBTimingResult(curves=[curve])
        table = format_rb_table(result)
        assert "20 ns" in table
        assert "0.10%" in table  # paper eps at 20 ns

    def test_allxy_table(self):
        result = AllXYResult(steps=[0, 1],
                             measured_a=[0.01, 0.02],
                             measured_b=[0.0, 0.05],
                             expected_a=[0.0, 0.0],
                             expected_b=[0.0, 0.0])
        table = format_allxy_table(result)
        assert "RMS error" in table

    def test_dse_table_renders_all_configs(self):
        table = DSETable(counts={"RB": {(n, w): 100
                                        for n in range(1, 11)
                                        for w in range(1, 5)}})
        rendered = format_dse_table(table)
        assert "--- RB ---" in rendered
        assert "baseline (config 1, w=1): 100" in rendered

    def test_dse_reductions(self):
        table = DSETable(counts={"X": {(1, 1): 200, (9, 2): 50}})
        assert table.baseline("X") == 200
        assert table.reduction_vs_baseline("X", 9, 2) == pytest.approx(
            0.75)
        assert table.reduction_between("X", 1, 1, 9, 2) == pytest.approx(
            0.75)
