"""Integration tests of the Section 5 experiment reproductions.

These run reduced-size versions (fewer shots / shorter sequences) of
the benchmark harness; the full-size numbers are produced by the
benches in ``benchmarks/``.
"""

import pytest

from repro.experiments.allxy import run_allxy_experiment
from repro.experiments.cfc import (
    measure_feedback_latencies,
    run_cfc_verification,
)
from repro.experiments.dse import (
    build_benchmarks,
    config9_effective_ops,
    issue_rate_analysis,
    run_dse,
)
from repro.experiments.grover import run_grover_tomography
from repro.experiments.rabi import run_rabi_experiment
from repro.experiments.rb_timing import run_rb_timing_experiment
from repro.experiments.reset import run_active_reset_experiment
from repro.experiments.runner import ExperimentSetup
from repro.quantum import NoiseModel


@pytest.fixture(scope="module")
def small_benchmarks():
    return build_benchmarks(rb_cliffords=64)


class TestActiveReset:
    def test_reset_probability_near_paper(self):
        result = run_active_reset_experiment(shots=800, seed=5)
        # Paper: 82.7 %, readout-limited.
        assert result.ground_probability == pytest.approx(0.827, abs=0.05)

    def test_conditional_execution_rate(self):
        result = run_active_reset_experiment(shots=800, seed=6)
        # X90 gives ~50 % |1>, so C_X should fire about half the time.
        assert result.conditional_executed_fraction == pytest.approx(
            0.5, abs=0.08)

    def test_noiseless_reset_is_perfect(self):
        result = run_active_reset_experiment(
            shots=100, seed=1, noise=NoiseModel.noiseless())
        assert result.ground_probability == 1.0


class TestCFC:
    def test_alternation(self):
        result = run_cfc_verification(rounds=12)
        assert result.alternates
        assert result.applied_operations == ["X", "Y"] * 6

    def test_latencies_match_paper(self):
        result = measure_feedback_latencies()
        assert result.fast_conditional_matches()   # ~92 ns
        assert result.cfc_matches()                # ~316 ns
        # CFC flexibility costs ~3-4x latency (the paper's trade-off).
        ratio = result.cfc_ns / result.fast_conditional_ns
        assert 2.5 < ratio < 4.5


class TestRBTiming:
    def test_error_grows_with_interval(self):
        result = run_rb_timing_experiment(
            intervals_ns=(320, 80, 20), max_length=200, num_lengths=4,
            num_sequences=2, seed=3)
        errors = result.error_by_interval()
        assert errors[320] > errors[80] > errors[20] > 0

    def test_interval_20_near_paper_error(self):
        result = run_rb_timing_experiment(
            intervals_ns=(20,), max_length=300, num_lengths=5,
            num_sequences=2, seed=4)
        # Paper: 0.10 % at 20 ns.
        assert result.error_by_interval()[20] == pytest.approx(
            0.0010, abs=4e-4)


class TestAllXY:
    def test_staircase_reproduced(self):
        result = run_allxy_experiment(shots=80, seed=7)
        assert result.rms_error_a() < 0.1
        assert result.rms_error_b() < 0.1
        # The staircase has all three plateaus.
        assert min(result.measured_a) < 0.15
        assert max(result.measured_a) > 0.85


class TestRabi:
    def test_oscillation_and_calibration(self):
        result = run_rabi_experiment(num_steps=9, shots=120, seed=13)
        # Pi pulse at the midpoint of a full 2*pi sweep.
        assert result.pi_pulse_step == 4
        assert result.max_deviation() < 0.15


class TestGrover:
    def test_single_oracle_fidelity(self):
        setup = ExperimentSetup.create(seed=17)
        fidelity = run_grover_tomography(3, setup, shots=120)
        # Paper: 85.6 % average; generous band for one reduced run.
        assert 0.75 < fidelity < 0.97

    def test_noiseless_fidelity_is_high(self):
        setup = ExperimentSetup.create(noise=NoiseModel.noiseless(),
                                       seed=2)
        fidelity = run_grover_tomography(1, setup, shots=120)
        assert fidelity > 0.97


class TestDSE:
    def test_paper_headline_rb_reduction(self, small_benchmarks):
        table = run_dse(small_benchmarks)
        # "By increasing w from 1 to 4, the number of instructions can
        # be reduced up to 62 % (RB)" — config 1, w=1 -> w=4.
        reduction = table.reduction_vs_baseline("RB", 1, 4)
        assert reduction == pytest.approx(0.62, abs=0.04)

    def test_parallel_benchmarks_benefit_more_from_width(
            self, small_benchmarks):
        table = run_dse(small_benchmarks)
        rb = table.reduction_vs_baseline("RB", 1, 4)
        sr = table.reduction_vs_baseline("SR", 1, 4)
        assert rb > sr

    def test_somq_benefits_ordering(self, small_benchmarks):
        # SOMQ: RB max ~42 %, IM ~24 % (w=1), SR <= ~7 %.
        table = run_dse(small_benchmarks)
        rb = table.reduction_between("RB", 5, 2, 9, 2)
        im = table.reduction_between("IM", 5, 1, 9, 1)
        sr = table.reduction_between("SR", 5, 1, 9, 1)
        assert rb == pytest.approx(0.42, abs=0.06)
        assert im == pytest.approx(0.24, abs=0.06)
        assert sr < 0.12
        assert rb > im > sr

    def test_config2_helps_sequential_most(self, small_benchmarks):
        table = run_dse(small_benchmarks)
        sr = table.reduction_between("SR", 1, 2, 2, 2)
        rb = table.reduction_between("RB", 1, 2, 2, 2)
        assert sr > rb

    def test_effective_ops_ordering(self, small_benchmarks):
        eff = config9_effective_ops(small_benchmarks)
        # RB (parallel) > IM > SR (sequential), growing with w for RB.
        assert eff["RB"][2] > eff["IM"][2] > eff["SR"][2]
        assert eff["RB"][4] > eff["RB"][2]
        assert eff["SR"][4] == pytest.approx(eff["SR"][2], abs=0.4)

    def test_issue_rate_quimis_vs_eqasm(self, small_benchmarks):
        report = issue_rate_analysis(small_benchmarks)
        # QuMIS cannot sustain the parallel benchmarks (Rreq ~3.7x the
        # budget); eQASM config 9 lands near budget for the dense
        # parallel loads and well within it for the sequential one —
        # the alleviation (not elimination) the paper claims.
        assert report.quimis["RB"] > 1.5
        assert report.quimis["IM"] > 1.5
        assert report.eqasm["SR"] < 1.0
        assert report.eqasm["RB"] < 1.5
        for name in ("RB", "IM", "SR"):
            assert report.eqasm[name] < report.quimis[name]
