"""Tests for the experiment runner and analysis routines."""

import numpy as np
import pytest

from repro.compiler import Circuit
from repro.experiments.analysis import (
    correct_population_for_readout,
    fit_rb_decay,
    logspaced_lengths,
    staircase_rms_error,
)
from repro.experiments.runner import (
    ExperimentSetup,
    excited_fraction,
    ground_fraction,
    outcome_counts,
)
from repro.quantum import NoiseModel
from repro.quantum.noise import ReadoutErrorModel


@pytest.fixture()
def setup():
    return ExperimentSetup.create(noise=NoiseModel.noiseless(), seed=0)


class TestRunner:
    def test_compile_and_run_x_gate(self, setup):
        circuit = Circuit("t", 3).add("X", 2).add("MEASZ", 2)
        traces = setup.run_circuit(circuit, shots=20)
        assert all(trace.last_result(2) == 1 for trace in traces)

    def test_excited_ground_fractions(self, setup):
        circuit = Circuit("t", 3).add("X", 0).add("MEASZ", 0)
        traces = setup.run_circuit(circuit, shots=10)
        assert excited_fraction(traces, 0) == 1.0
        assert ground_fraction(traces, 0) == 0.0

    def test_fraction_without_results_raises(self, setup):
        circuit = Circuit("t", 3).add("X", 0).add("MEASZ", 0)
        traces = setup.run_circuit(circuit, shots=5)
        with pytest.raises(ValueError):
            excited_fraction(traces, 2)

    def test_outcome_counts(self, setup):
        circuit = Circuit("t", 3)
        circuit.add("X", 0).add("MEASZ", 0).add("MEASZ", 2)
        traces = setup.run_circuit(circuit, shots=8)
        counts = outcome_counts(traces, 0, 2)
        assert counts == {2: 8}  # |10> with qubit 0 as MSB

    def test_survival_probability_exact(self, setup):
        circuit = Circuit("t", 3).add("X90", 0)
        survival = setup.survival_probability(circuit, 0)
        assert survival == pytest.approx(0.5, abs=1e-9)

    def test_interval_compilation_spreads_gates(self, setup):
        circuit = Circuit("t", 3).add("X", 0).add("Y", 0)
        setup.run_circuit(circuit, shots=1, interval_cycles=16)
        log = setup.machine.plant.operations_log
        starts = [op.start_ns for op in log if op.name in ("X", "Y")]
        assert starts[1] - starts[0] == pytest.approx(320.0)

    def test_assemble_text_round(self, setup):
        assembled = setup.assemble_text("SMIS S2, {2}\nX S2\nMEASZ S2\nSTOP")
        traces = setup.run(assembled, shots=3)
        assert all(trace.last_result(2) == 1 for trace in traces)


class TestRBFit:
    def test_fit_recovers_synthetic_decay(self):
        rng = np.random.default_rng(0)
        decay = 0.98
        lengths = [2, 5, 10, 20, 50, 100, 200]
        survivals = [0.5 + 0.5 * decay ** k + rng.normal(0, 0.002)
                     for k in lengths]
        fit = fit_rb_decay(lengths, survivals)
        assert fit.decay == pytest.approx(decay, abs=0.005)

    def test_derived_error_rates(self):
        fit = fit_rb_decay([1, 10, 100, 500],
                           [0.5 + 0.5 * 0.99 ** k
                            for k in (1, 10, 100, 500)])
        # f = 0.99 -> error per Clifford = 0.005.
        assert fit.error_per_clifford == pytest.approx(0.005, abs=5e-4)
        assert fit.error_per_gate == pytest.approx(
            1 - (1 - 0.005) ** (1 / 1.875), rel=0.1)

    def test_fit_needs_three_points(self):
        with pytest.raises(ValueError):
            fit_rb_decay([1, 2], [0.9, 0.8])

    def test_fit_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            fit_rb_decay([1, 2, 3], [0.9, 0.8])

    def test_survival_model_evaluation(self):
        fit = fit_rb_decay([1, 10, 100], [0.99, 0.95, 0.65])
        assert 0.0 <= fit.survival(50) <= 1.0


class TestReadoutCorrection:
    def test_perfect_readout_identity(self):
        readout = ReadoutErrorModel(p01=0.0, p10=0.0)
        assert correct_population_for_readout(0.3, readout) == \
            pytest.approx(0.3)

    def test_correction_undoes_symmetric_error(self):
        readout = ReadoutErrorModel(p01=0.1, p10=0.1)
        true_p1 = 0.7
        measured = true_p1 * 0.9 + (1 - true_p1) * 0.1
        corrected = correct_population_for_readout(measured, readout)
        assert corrected == pytest.approx(true_p1, abs=1e-9)

    def test_clipping(self):
        readout = ReadoutErrorModel(p01=0.1, p10=0.1)
        assert correct_population_for_readout(0.0, readout) == 0.0
        assert correct_population_for_readout(1.0, readout) == 1.0


class TestHelpers:
    def test_staircase_rms(self):
        assert staircase_rms_error([0.0, 1.0], [0.0, 1.0]) == 0.0
        assert staircase_rms_error([0.5, 0.5], [0.0, 1.0]) == \
            pytest.approx(0.5)

    def test_staircase_rms_length_mismatch(self):
        with pytest.raises(ValueError):
            staircase_rms_error([0.1], [0.1, 0.2])

    def test_logspaced_lengths(self):
        lengths = logspaced_lengths(2000, 8, minimum=2)
        assert lengths[0] >= 2
        assert lengths[-1] == 2000
        assert lengths == sorted(set(lengths))

    def test_logspaced_needs_two(self):
        with pytest.raises(ValueError):
            logspaced_lengths(100, 1)
