"""Instrumentation tests for :class:`repro.uarch.QuMAv2` runs.

A traced run must expose its phase structure (load, dataflow, backend
selection, per-engine execution) as spans, publish its
:class:`EngineStats` into the ``engine.*`` metric namespace, and —
critically — *not perturb* the simulated physics: the same seed
produces bit-identical shot traces with tracing on or off.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import Assembler, two_qubit_instantiation
from repro.experiments.runner import ExperimentSetup
from repro.obs import Observability
from repro.quantum import NoiseModel, QuantumPlant
from repro.quantum.noise import DecoherenceModel, GateErrorModel
from repro.uarch import EngineStats, FaultPlan, FaultSpec, QuMAv2

ACTIVE_RESET = """
SMIS S2, {2}
QWAIT 10000
X90 S2
MEASZ S2
QWAIT 50
C_X S2
MEASZ S2
STOP
"""

FRAME_CLIFFORD = """
SMIS S0, {0}
SMIS S2, {2}
SMIS S3, {0, 2}
SMIT T0, {(0, 2)}
QWAIT 10000
H S0
QWAIT 10
CZ T0
QWAIT 10
X90 S2
QWAIT 10
MEASZ S3
QWAIT 50
STOP
"""


def make_machine(text=ACTIVE_RESET, seed=0, noise=None,
                 observability=None):
    isa = two_qubit_instantiation()
    plant = QuantumPlant(isa.topology, noise=noise or NoiseModel(),
                         rng=np.random.default_rng(seed))
    machine = QuMAv2(isa, plant, observability=observability)
    machine.load(Assembler(isa).assemble_text(text))
    return machine


def frame_noise():
    """Stochastic Pauli gate noise: blocks replay, selects the
    Pauli-frame batched engine (see tests/uarch/test_faults.py)."""
    return NoiseModel(
        decoherence=DecoherenceModel(t1_ns=1e15, t2_ns=1e15),
        gate_error=GateErrorModel(single_qubit_error=0.03,
                                  two_qubit_error=0.05))


class TestTracedReplayRun:
    def run_traced(self, shots=60):
        obs = Observability()
        machine = make_machine(observability=obs)
        traces = machine.run(shots)
        return obs, machine, traces

    def test_phase_spans_present_and_nested(self):
        obs, machine, _ = self.run_traced()
        spans = {span.name: span for span in obs.tracer.spans()}
        for name in ("machine.load", "machine.run",
                     "machine.dataflow", "machine.select_backend",
                     "machine.replay_analysis"):
            assert name in spans, f"missing span {name}"
        assert spans["machine.run"].attributes["engine"] == "replay"
        assert spans["machine.run"].attributes["shots"] == 60

    def test_engine_metrics_published(self):
        obs, machine, _ = self.run_traced(shots=60)
        stats = machine.engine_stats
        snapshot = obs.snapshot()
        assert snapshot["engine.shots_total"]["value"] == 60
        assert (snapshot["engine.replay.cached_shots"]["value"]
                == stats.replay_shots > 0)
        assert (snapshot["engine.interpreter.shots"]["value"]
                == stats.interpreter_shots)
        assert snapshot["engine.selected.replay"]["value"] == 1
        assert (snapshot["engine.replay.tree.nodes"]["value"]
                == stats.tree_nodes)
        # Cached-walk timing is stride-sampled (1 shot in 16) and
        # published once per run as a counter pair.
        assert snapshot["engine.replay.walk.timed_shots"]["value"] >= 1
        assert snapshot["engine.replay.walk.time_ns"]["value"] > 0
        # Growth shots are timed per shot into a histogram.
        growth = snapshot["engine.replay.growth_shot.time_ns"]
        assert 1 <= growth["count"] <= stats.interpreter_shots
        # Plant kernels report under their backend's namespace.
        gate_kernel = [name for name in snapshot
                       if name.endswith(".gate.time_ns")]
        assert gate_kernel and snapshot[gate_kernel[0]]["count"] > 0

    def test_tracing_does_not_perturb_physics(self):
        shots = 40
        plain = make_machine(seed=7).run(shots)
        traced = make_machine(seed=7,
                              observability=Observability()).run(shots)
        for a, b in zip(plain, traced):
            assert a.outcome_path() == b.outcome_path()
            assert a.triggers == b.triggers
            assert a.classical_time_ns == b.classical_time_ns

    def test_disabled_machine_records_nothing(self):
        machine = make_machine()
        assert machine.observability is None
        machine.run(10)  # no attribute errors on any hook site

    def test_rerun_detaches_cleanly(self):
        obs = Observability()
        machine = make_machine(observability=obs)
        machine.run(10)
        machine.observability = None
        machine.run(10)
        snapshot = obs.snapshot()
        assert snapshot["engine.shots_total"]["value"] == 10


class TestTracedFrameRun:
    def test_frame_phase_spans_and_metrics(self):
        obs = Observability()
        machine = make_machine(FRAME_CLIFFORD, noise=frame_noise(),
                               observability=obs)
        machine.run(50)
        assert machine.engine_stats.engine == "frame"
        names = {span.name for span in obs.tracer.spans()}
        assert "engine.frame.reference_shot" in names
        assert "engine.frame.batch" in names
        snapshot = obs.snapshot()
        assert snapshot["engine.frame.batched_shots"]["value"] == 50
        assert snapshot["engine.frame.reference_shots"]["value"] == 1
        assert snapshot["engine.selected.frame"]["value"] == 1


class TestDegradationEvents:
    def test_resilient_ladder_emits_structured_events(self):
        """Satellite: every degradation-ladder rung taken by
        ``run_resilient`` is a structured trace event carrying the
        triggering guard fault's context."""
        obs = Observability()
        setup = ExperimentSetup.create(noise=NoiseModel(), seed=0,
                                       observability=obs)
        assembled = setup.assemble_text(ACTIVE_RESET)
        setup.machine.arm_faults(
            FaultPlan([FaultSpec("backend_gate", shot=0)]))
        traces = setup.run_resilient(assembled, 20)
        assert len(traces) == 20
        assert setup.last_engine_stats.degradations

        events = [event for event in obs.tracer.events()
                  if event.name == "runner.degradation"]
        assert events, "ladder rung left no trace event"
        attrs = events[0].attributes
        assert attrs["attempt"] == 1
        assert attrs["error"] == "BackendFaultError"
        assert attrs["rung"]
        assert isinstance(attrs["context"], dict) and attrs["context"]
        # The injected fault itself is also an instant event.
        assert any(event.name == "machine.fault_injected"
                   for event in obs.tracer.events())


class TestEngineStatsContract:
    """Pin the snapshot/as_dict surface of :class:`EngineStats` — the
    fields serving and benchmarks rely on must not silently vanish."""

    REQUIRED_FIELDS = {
        "engine", "plant_backend", "shots_total", "interpreter_shots",
        "replay_shots", "frame_batched", "frame_reference_shots",
        "segment_cache_hits", "segment_cache_misses", "degradations",
        "faults_injected",
    }

    def test_as_dict_exposes_every_field(self):
        field_names = {field.name for field in
                       dataclasses.fields(EngineStats)}
        assert self.REQUIRED_FIELDS <= field_names
        assert set(EngineStats().as_dict()) == field_names

    def test_snapshot_is_deep_enough_copy(self):
        stats = EngineStats()
        stats.degradations.append("rung")
        stats.faults_injected.append("fault")
        copy = stats.snapshot()
        stats.degradations.append("later")
        stats.faults_injected.append("later")
        assert copy.degradations == ["rung"]
        assert copy.faults_injected == ["fault"]

    def test_publish_metrics_namespace(self):
        from repro.obs import MetricsRegistry
        stats = EngineStats(engine="replay", plant_backend="dense",
                            shots_total=9, interpreter_shots=2,
                            replay_shots=4, frame_batched=3,
                            frame_reference_shots=1, tree_nodes=11)
        stats.degradations.append("replay→interpreter")
        registry = MetricsRegistry()
        stats.publish_metrics(registry)
        snapshot = registry.snapshot()
        assert snapshot["engine.shots_total"]["value"] == 9
        assert snapshot["engine.replay.cached_shots"]["value"] == 4
        assert snapshot["engine.frame.batched_shots"]["value"] == 3
        assert snapshot["engine.frame.reference_shots"]["value"] == 1
        assert snapshot["engine.selected.replay"]["value"] == 1
        assert snapshot["engine.plant_backend.dense"]["value"] == 1
        assert snapshot["engine.degradations"]["value"] == 1
        assert snapshot["engine.replay.tree.nodes"]["value"] == 11
        assert snapshot["engine.replay.tree.nodes"]["type"] == "gauge"
