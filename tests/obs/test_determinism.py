"""The deterministic-snapshot guarantee of :mod:`repro.obs`.

Two identical seeded runs must produce *byte-identical* metric
snapshots once wall-clock-valued entries (leaf names ending ``_ns`` /
``_s``) are stripped — the contract that makes exported telemetry
diffable across machines and CI runs.
"""

import json

import numpy as np

from repro.core import Assembler, two_qubit_instantiation
from repro.obs import Observability
from repro.quantum import NoiseModel, QuantumPlant
from repro.uarch import QuMAv2

ACTIVE_RESET = """
SMIS S2, {2}
QWAIT 10000
X90 S2
MEASZ S2
QWAIT 50
C_X S2
MEASZ S2
STOP
"""


def traced_run(seed=11, shots=50, sample_fraction=1.0):
    obs = Observability(sample_fraction=sample_fraction)
    isa = two_qubit_instantiation()
    plant = QuantumPlant(isa.topology, noise=NoiseModel(),
                         rng=np.random.default_rng(seed))
    machine = QuMAv2(isa, plant, observability=obs)
    machine.load(Assembler(isa).assemble_text(ACTIVE_RESET))
    traces = machine.run(shots)
    return obs, traces


def canonical(obs):
    return json.dumps(obs.snapshot(exclude_timing=True),
                      sort_keys=True)


class TestSnapshotDeterminism:
    def test_identical_seeded_runs_snapshot_identically(self):
        first = canonical(traced_run()[0])
        second = canonical(traced_run()[0])
        assert first == second

    def test_filtered_snapshot_still_carries_the_engine_story(self):
        obs, _ = traced_run()
        filtered = obs.snapshot(exclude_timing=True)
        assert filtered["engine.shots_total"]["value"] == 50
        assert "engine.replay.cached_shots" in filtered
        # ... while every wall-clock entry is gone.
        assert not any(name.endswith(("_ns", "_s")) for name in filtered)

    def test_unfiltered_snapshots_differ_only_in_timing(self):
        """The complement check: the raw snapshots of two identical
        runs agree on exactly the non-timing keys."""
        a = traced_run()[0].snapshot()
        b = traced_run()[0].snapshot()
        assert set(a) == set(b)
        for name in a:
            if not name.rsplit(".", 1)[-1].endswith(("_ns", "_s")):
                assert a[name] == b[name], name

    def test_sampling_changes_spans_not_shots_or_metrics(self):
        """Sampled tracing uses a deterministic credit accumulator —
        never an RNG draw — so physics and metrics are unchanged."""
        full_obs, full_traces = traced_run(sample_fraction=1.0)
        sampled_obs, sampled_traces = traced_run(sample_fraction=0.0)
        for a, b in zip(full_traces, sampled_traces):
            assert a.outcome_path() == b.outcome_path()
            assert a.triggers == b.triggers
        assert canonical(full_obs) == canonical(sampled_obs)
        # Root spans (machine.run) were suppressed at fraction 0.0.
        sampled_names = {s.name for s in sampled_obs.tracer.spans()}
        assert "machine.run" not in sampled_names
        full_names = {s.name for s in full_obs.tracer.spans()}
        assert "machine.run" in full_names
