"""Unit tests for the span tracer half of :mod:`repro.obs`.

Pins nesting bookkeeping, the bounded ring, deterministic sampling,
the strict Chrome ``trace_event`` schema of the export, and foreign-
event ingestion (how worker spans land on driver tracks).
"""

import json

import pytest

from repro.obs import Observability, SpanTracer


class FakeClock:
    """Deterministic nanosecond clock advancing a fixed step per read."""

    def __init__(self, step_ns=1000):
        self.now = 0
        self.step_ns = step_ns

    def __call__(self):
        self.now += self.step_ns
        return self.now


def make_tracer(**kwargs):
    kwargs.setdefault("clock", FakeClock())
    return SpanTracer(**kwargs)


class TestNesting:
    def test_parent_and_depth_recorded(self):
        tracer = make_tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        spans = {span.name: span for span in tracer.spans()}
        assert spans["outer"].parent is None
        assert spans["outer"].depth == 0
        assert spans["inner"].parent == "outer"
        assert spans["inner"].depth == 1
        # Records land at *end* time: inner completes first.
        assert [span.name for span in tracer.spans()] == ["inner",
                                                          "outer"]

    def test_end_attributes_merge_into_begin_attributes(self):
        tracer = make_tracer()
        span = tracer.begin("run", shots=5)
        tracer.end(span, engine="replay")
        [record] = tracer.spans()
        assert record.attributes == {"shots": 5, "engine": "replay"}

    def test_nesting_violation_raises(self):
        tracer = make_tracer()
        outer = tracer.begin("outer")
        tracer.begin("inner")
        with pytest.raises(RuntimeError, match="nesting violation"):
            tracer.end(outer)

    def test_record_span_is_stack_free(self):
        tracer = make_tracer()
        with tracer.span("covering"):
            tracer.record_span("retro", 100, 400, tid=7,
                               parent="covering", index=3)
        retro = tracer.spans()[0]
        assert retro.name == "retro"
        assert retro.start_ns == 100 and retro.duration_ns == 300
        assert retro.tid == 7 and retro.parent == "covering"
        assert retro.attributes == {"index": 3}
        # Clamped, never negative, even with misordered endpoints.
        tracer.record_span("clamped", 500, 400)
        assert tracer.spans()[-1].duration_ns == 0


class TestRingBuffer:
    def test_oldest_records_evicted_and_counted(self):
        tracer = make_tracer(capacity=4)
        for index in range(6):
            with tracer.span(f"s{index}"):
                pass
        assert tracer.dropped == 2
        assert [span.name for span in tracer.spans()] == [
            "s2", "s3", "s4", "s5"]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            SpanTracer(capacity=0)

    def test_clear_resets_everything(self):
        tracer = make_tracer(capacity=1)
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        tracer.ingest_chrome_events([{"name": "x"}], pid=1)
        tracer.clear()
        assert not tracer.spans() and not tracer.events()
        assert tracer.dropped == 0
        assert tracer.chrome_trace_events() == []


class TestSampling:
    def test_credit_accumulator_records_every_other_root(self):
        tracer = make_tracer(sample_fraction=0.5)
        for index in range(6):
            with tracer.span(f"root{index}"):
                with tracer.span("child"):
                    pass
        roots = [s.name for s in tracer.spans() if s.depth == 0]
        # Deterministic: credit reaches 1.0 on roots 1, 3, 5.
        assert roots == ["root1", "root3", "root5"]
        # A sampled root carries its subtree; an unsampled one
        # suppresses it.
        assert sum(s.name == "child" for s in tracer.spans()) == 3

    def test_events_never_sampled_away(self):
        tracer = make_tracer(sample_fraction=0.0)
        with tracer.span("invisible"):
            tracer.event("fault", site="backend_gate")
        assert tracer.spans() == []
        [event] = tracer.events()
        assert event.name == "fault"
        assert event.attributes == {"site": "backend_gate"}

    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            SpanTracer(sample_fraction=1.5)


class TestChromeExport:
    """The exported events must satisfy the ``trace_event`` schema
    strictly — chrome://tracing and Perfetto both load the file."""

    SPAN_KEYS = {"name", "cat", "ph", "ts", "dur", "pid", "tid", "args"}
    INSTANT_KEYS = {"name", "cat", "ph", "ts", "s", "pid", "tid", "args"}

    def make_traced(self):
        tracer = make_tracer()
        with tracer.span("outer", shots=3):
            with tracer.span("inner"):
                pass
            tracer.event("degradation", rung="dense")
        return tracer

    def test_event_schema(self):
        for event in self.make_traced().chrome_trace_events(pid=42):
            assert event["ph"] in {"X", "i"}
            if event["ph"] == "X":
                assert set(event) == self.SPAN_KEYS
                assert event["dur"] >= 0
            else:
                assert set(event) == self.INSTANT_KEYS
                assert event["s"] == "t"
            assert event["cat"] == "repro"
            assert event["pid"] == 42
            assert isinstance(event["ts"], float)
            assert isinstance(event["args"], dict)

    def test_trace_file_is_one_json_array(self, tmp_path):
        path = tmp_path / "trace.json"
        self.make_traced().write_chrome_trace(path, pid=7)
        events = json.loads(path.read_text())
        assert isinstance(events, list) and len(events) == 3
        assert {event["name"] for event in events} == {
            "outer", "inner", "degradation"}

    def test_event_log_is_jsonl(self, tmp_path):
        path = tmp_path / "events.jsonl"
        self.make_traced().write_event_log(path, pid=7)
        records = [json.loads(line) for line in
                   path.read_text().splitlines()]
        # Completion order: inner span, the instant event, outer span.
        assert [r["kind"] for r in records] == ["span", "event", "span"]
        assert all(r["pid"] == 7 for r in records)
        span = records[2]
        assert span["name"] == "outer"
        assert span["duration_ns"] > 0

    def test_non_json_attributes_degrade_to_repr(self):
        tracer = make_tracer()
        tracer.event("odd", payload={1: {2, 3}})
        [event] = tracer.chrome_trace_events()
        json.dumps(event)  # still exportable
        assert event["args"]["payload"]["1"] == repr({2, 3})

    def test_ingested_events_are_retagged(self):
        tracer = make_tracer()
        foreign = [{"name": "machine.run", "cat": "repro", "ph": "X",
                    "ts": 1.0, "dur": 2.0, "pid": 999, "tid": 0,
                    "args": {}}]
        tracer.ingest_chrome_events(foreign, pid=0, tid=5)
        [event] = tracer.chrome_trace_events(pid=0)
        assert event["pid"] == 0 and event["tid"] == 5
        # The caller's list is not mutated.
        assert foreign[0]["pid"] == 999 and foreign[0]["tid"] == 0


class TestObservabilityFacade:
    def test_export_writes_three_artifacts(self, tmp_path):
        obs = Observability(clock=FakeClock())
        with obs.span("machine.run"):
            pass
        obs.metrics.inc("engine.shots_total", 4)
        obs.metrics.observe("engine.replay.growth_shot.time_ns", 2e4)
        paths = obs.export(tmp_path, prefix="t")
        assert sorted(paths) == ["events", "metrics", "trace"]
        metrics = json.loads((tmp_path / "t_metrics.json").read_text())
        assert metrics["engine.shots_total"]["value"] == 4
        trace = json.loads((tmp_path / "t_trace.json").read_text())
        assert trace[0]["name"] == "machine.run"
        assert (tmp_path / "t_events.jsonl").read_text().count("\n") == 1

    def test_snapshot_exclude_timing(self):
        obs = Observability()
        obs.metrics.inc("engine.shots_total", 1)
        obs.metrics.observe("backend.dense.gate.time_ns", 100.0)
        assert "backend.dense.gate.time_ns" in obs.snapshot()
        filtered = obs.snapshot(exclude_timing=True)
        assert list(filtered) == ["engine.shots_total"]
