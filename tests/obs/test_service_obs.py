"""End-to-end observability of a traced :class:`SweepService` run.

A sweep with ``SweepSpec.observe=True`` served through a
``SweepService(observability=...)`` must export one coherent timeline:
the driver's ``service.sweep`` span, per-point dispatch-to-journal
``service.point`` spans (one track per point index), the journal
append measured inside each, and the worker-side ``machine.run`` spans
ingested onto the *same* per-point track so Perfetto shows
dispatch -> execute -> journal by time containment.
"""

import json
import math

from repro.core.isa import two_qubit_instantiation
from repro.core.operations import (
    add_rabi_amplitude_operations,
    default_operation_set,
)
from repro.experiments.runner import ExperimentSetup
from repro.obs import Observability
from repro.quantum.noise import NoiseModel
from repro.serving import ServiceConfig, SweepService, SweepSpec

MAX_STEPS = 16
POINTS = 4
SHOTS = 15


# The sweep factories must survive a fork into worker processes, so
# they live at module level (same pattern as tests/serving).
def build_setup() -> ExperimentSetup:
    operations = default_operation_set()
    add_rabi_amplitude_operations(operations, MAX_STEPS,
                                  max_angle=2.0 * math.pi)
    isa = two_qubit_instantiation(operations)
    return ExperimentSetup.create(isa=isa, noise=NoiseModel(), seed=0)


def build_program(setup, params):
    from repro.workloads.rabi import rabi_step_circuit
    return setup.compile_circuit(
        rabi_step_circuit(params["step"], qubit=2))


def make_observed_spec(name="obs-rabi") -> SweepSpec:
    return SweepSpec.from_params(
        name=name, shots=SHOTS, seed=7,
        params=[{"step": step} for step in range(POINTS)],
        setup_factory=build_setup,
        program_factory=build_program,
        observe=True)


def run_traced_sweep(tmp_path, journal=True):
    obs = Observability()
    config = ServiceConfig(num_workers=2, shard_size=2,
                           poll_interval_s=0.01, drain_timeout_s=10.0)
    service = SweepService(config, observability=obs)
    journal_path = tmp_path / "sweep.journal" if journal else None
    result = service.run_sweep(make_observed_spec(),
                               journal_path=journal_path)
    return obs, service, result


class TestTracedSweep:
    def test_span_structure(self, tmp_path):
        obs, service, result = run_traced_sweep(tmp_path)
        assert len(result.results) == POINTS

        spans = obs.tracer.spans()
        sweeps = [s for s in spans if s.name == "service.sweep"]
        points = [s for s in spans if s.name == "service.point"]
        journals = [s for s in spans
                    if s.name == "service.point.journal"]
        assert len(sweeps) == 1
        assert sweeps[0].attributes["points"] == POINTS
        # One dispatch-to-journal span per point, each on its own
        # track (tid = point index + 1) under the sweep span.
        assert sorted(s.tid for s in points) == [1, 2, 3, 4]
        assert all(s.parent == "service.sweep" for s in points)
        assert len(journals) == POINTS
        assert all(s.parent == "service.point" for s in journals)
        # Dispatch events mark queue activity on the driver side.
        assert any(e.name == "service.dispatch"
                   for e in obs.tracer.events())

    def test_worker_spans_nest_inside_their_point(self, tmp_path):
        obs, service, result = run_traced_sweep(tmp_path)
        events = obs.tracer.chrome_trace_events(pid=0)
        by_track = {}
        for event in events:
            if event["ph"] == "X":
                by_track.setdefault(event["tid"], []).append(event)
        for tid in range(1, POINTS + 1):
            track = {e["name"]: e for e in by_track[tid]}
            point = track["service.point"]
            for name in ("machine.run", "service.point.journal"):
                inner = track[name]
                assert inner["ts"] >= point["ts"]
                assert (inner["ts"] + inner["dur"]
                        <= point["ts"] + point["dur"] + 1e-6), (
                    f"{name} escapes its service.point on track {tid}")

    def test_worker_metrics_aggregate_into_driver(self, tmp_path):
        obs, service, result = run_traced_sweep(tmp_path)
        snapshot = obs.snapshot()
        # engine.* metrics merged across worker processes.
        assert (snapshot["engine.shots_total"]["value"]
                == POINTS * SHOTS)
        # service.* metrics published from ServiceStats.
        assert snapshot["service.points.completed"]["value"] == POINTS
        assert snapshot["service.sweeps.completed"]["value"] == 1
        latency = snapshot["service.point.latency_s"]
        assert latency["type"] == "histogram"
        assert latency["count"] == POINTS
        assert snapshot["service.journal.append.time_ns"]["count"] \
            == POINTS

    def test_export_is_perfetto_loadable(self, tmp_path):
        obs, service, result = run_traced_sweep(tmp_path)
        paths = obs.export(tmp_path / "export", prefix="sweep")
        events = json.loads(open(paths["trace"]).read())
        assert isinstance(events, list)
        names = {event["name"] for event in events}
        assert {"service.sweep", "service.point",
                "service.point.journal", "machine.run"} <= names
        for event in events:
            assert event["ph"] in {"X", "i"}
            assert {"name", "ph", "ts", "pid", "tid"} <= set(event)

    def test_telemetry_never_lands_in_the_journal(self, tmp_path):
        """Worker observability payloads are detached before the point
        is journaled — journals stay lean and replayable."""
        run_traced_sweep(tmp_path)
        journal_text = (tmp_path / "sweep.journal").read_text()
        for line in journal_text.splitlines():
            record = json.loads(line)
            payload = record.get("payload", record)
            assert "obs" not in payload

    def test_untraced_service_records_nothing(self, tmp_path):
        service = SweepService(ServiceConfig(
            num_workers=2, shard_size=2, poll_interval_s=0.01,
            drain_timeout_s=10.0))
        assert service.observability is None
        result = service.run_sweep(make_observed_spec("untraced"))
        assert len(result.results) == POINTS


class TestServiceStatsHistogram:
    def test_stats_surface_point_latency_and_frame_counts(self,
                                                          tmp_path):
        obs, service, result = run_traced_sweep(tmp_path)
        stats = service.stats_snapshot()
        assert stats.point_latency.count == POINTS
        assert stats.point_latency.percentile(0.5) > 0.0
        as_dict = stats.as_dict()
        assert as_dict["point_latency"]["count"] == POINTS
        assert "p99_ms" in as_dict["point_latency"]
        assert "frame_batched_shots" in as_dict

    def test_snapshot_histogram_is_independent(self, tmp_path):
        obs, service, result = run_traced_sweep(tmp_path)
        snapshot = service.stats_snapshot()
        snapshot.point_latency.record(1e9)
        assert service.stats_snapshot().point_latency.count == POINTS
