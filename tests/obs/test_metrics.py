"""Unit tests for the metrics half of :mod:`repro.obs`.

Pins the numeric contracts the instrumentation relies on: bucket-edge
assignment, interpolated percentiles, exact merges, registry typing,
sorted snapshots, and the timing-name filter behind the
deterministic-snapshot guarantee.
"""

import json

import pytest

from repro.obs import (
    Histogram,
    LATENCY_S_BOUNDS,
    MetricsRegistry,
    TIME_NS_BOUNDS,
    exponential_bounds,
    filter_timing,
)


class TestExponentialBounds:
    def test_values(self):
        assert exponential_bounds(1.0, 2.0, 4) == (1.0, 2.0, 4.0, 8.0)

    @pytest.mark.parametrize("start,factor,count",
                             [(0.0, 2.0, 4), (-1.0, 2.0, 4),
                              (1.0, 1.0, 4), (1.0, 0.5, 4),
                              (1.0, 2.0, 0)])
    def test_rejects_degenerate(self, start, factor, count):
        with pytest.raises(ValueError):
            exponential_bounds(start, factor, count)

    def test_default_bounds_are_strictly_increasing(self):
        for bounds in (TIME_NS_BOUNDS, LATENCY_S_BOUNDS):
            assert all(a < b for a, b in zip(bounds, bounds[1:]))


class TestHistogramBuckets:
    """Bucket assignment: first bucket whose upper edge satisfies
    ``value <= edge``; past the last edge lands in overflow."""

    def test_edge_values_land_in_their_bucket(self):
        h = Histogram((1.0, 2.0, 4.0))
        # A value exactly on an edge belongs to that edge's bucket.
        h.record(1.0)   # bucket 0 (<= 1.0)
        h.record(1.5)   # bucket 1
        h.record(2.0)   # bucket 1 (<= 2.0)
        h.record(4.0)   # bucket 2
        h.record(4.1)   # overflow
        h.record(0.0)   # bucket 0
        assert h.bucket_counts == [2, 2, 1, 1]
        assert h.count == 6
        assert h.min_value == 0.0 and h.max_value == 4.1
        assert h.total == pytest.approx(12.6)

    def test_overflow_bucket_is_implicit(self):
        h = Histogram((10.0,))
        assert len(h.bucket_counts) == 2
        h.record(1e9)
        assert h.bucket_counts == [0, 1]

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram(())
        with pytest.raises(ValueError):
            Histogram((1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram((2.0, 1.0))


class TestHistogramPercentiles:
    def test_empty_reports_zero(self):
        assert Histogram((1.0,)).percentile(0.5) == 0.0

    def test_clamped_to_observed_extremes(self):
        h = Histogram.from_values([5.0, 5.0, 5.0], (1.0, 10.0, 100.0))
        assert h.percentile(0.0) == 5.0
        assert h.percentile(1.0) == 5.0

    def test_interpolates_within_bucket(self):
        h = Histogram.from_values(range(1, 101), (25.0, 50.0, 75.0,
                                                  100.0))
        assert h.percentile(0.50) == pytest.approx(50.0, abs=1.0)
        assert h.percentile(0.99) == pytest.approx(99.0, abs=1.0)

    def test_fraction_bounds_checked(self):
        with pytest.raises(ValueError):
            Histogram((1.0,)).percentile(1.5)


class TestHistogramMerge:
    def test_merge_is_exact_bucketwise_addition(self):
        bounds = (1.0, 2.0, 4.0)
        a = Histogram.from_values([0.5, 1.5, 3.0], bounds)
        b = Histogram.from_values([3.5, 100.0], bounds)
        combined = Histogram.from_values([0.5, 1.5, 3.0, 3.5, 100.0],
                                         bounds)
        a.merge(b)
        assert a.bucket_counts == combined.bucket_counts
        assert a.count == combined.count
        assert a.total == pytest.approx(combined.total)
        assert a.min_value == combined.min_value
        assert a.max_value == combined.max_value

    def test_merge_rejects_mismatched_bounds(self):
        with pytest.raises(ValueError):
            Histogram((1.0, 2.0)).merge(Histogram((1.0, 3.0)))

    def test_copy_is_independent(self):
        original = Histogram.from_values([1.0], (2.0,))
        clone = original.copy()
        clone.record(1.0)
        assert original.count == 1 and clone.count == 2

    def test_as_dict_from_dict_roundtrip(self):
        h = Histogram.from_values([0.5, 3.0, 9.0], (1.0, 4.0))
        rebuilt = Histogram.from_dict(
            json.loads(json.dumps(h.as_dict())))
        assert rebuilt.as_dict() == h.as_dict()


class TestMetricsRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("a.b")
        with pytest.raises(ValueError):
            registry.gauge("a.b")
        with pytest.raises(ValueError):
            registry.histogram("a.b")

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("a").inc(-1)

    def test_snapshot_is_sorted_and_json_ready(self):
        registry = MetricsRegistry()
        registry.inc("z.last")
        registry.set_gauge("a.first", 3.5)
        registry.observe("m.middle.time_ns", 1500.0)
        snapshot = registry.snapshot()
        assert list(snapshot) == sorted(snapshot)
        json.dumps(snapshot)  # must be serialisable as-is
        assert snapshot["z.last"] == {"type": "counter", "value": 1}
        assert snapshot["a.first"]["type"] == "gauge"
        assert snapshot["m.middle.time_ns"]["count"] == 1

    def test_merge_snapshot_semantics(self):
        """Counters add, gauges take the incoming level, histograms
        merge — the worker-to-driver aggregation rule."""
        driver = MetricsRegistry()
        driver.inc("engine.shots_total", 10)
        driver.set_gauge("queue.depth", 1)
        driver.observe("kernel.time_ns", 500.0)

        worker = MetricsRegistry()
        worker.inc("engine.shots_total", 7)
        worker.set_gauge("queue.depth", 9)
        worker.observe("kernel.time_ns", 2e9)

        driver.merge_snapshot(worker.snapshot())
        snapshot = driver.snapshot()
        assert snapshot["engine.shots_total"]["value"] == 17
        assert snapshot["queue.depth"]["value"] == 9
        assert snapshot["kernel.time_ns"]["count"] == 2
        assert snapshot["kernel.time_ns"]["max"] == 2e9

    def test_merge_snapshot_rejects_unknown_type(self):
        with pytest.raises(ValueError):
            MetricsRegistry().merge_snapshot(
                {"x": {"type": "mystery", "value": 1}})

    def test_len_and_clear(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.inc("b")
        assert len(registry) == 2
        registry.clear()
        assert len(registry) == 0


class TestFilterTiming:
    def test_strips_exactly_timing_leaves(self):
        snapshot = {
            "engine.replay.walk.time_ns": {"type": "counter", "value": 1},
            "service.point.latency_s": {"type": "histogram"},
            "engine.shots_total": {"type": "counter", "value": 5},
            # Leaf must *end with* "_ns"/"_s" — these all survive.
            "engine.ns.shots": {"type": "counter", "value": 2},
            "latency_s.count": {"type": "counter", "value": 3},
        }
        filtered = filter_timing(snapshot)
        assert sorted(filtered) == ["engine.ns.shots",
                                    "engine.shots_total",
                                    "latency_s.count"]
