"""Tests for the noise models."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import PlantError
from repro.quantum.noise import (
    DecoherenceModel,
    GateErrorModel,
    NoiseModel,
    ReadoutErrorModel,
    amplitude_damping,
    bit_flip,
    compose_channels,
    depolarizing,
    is_trace_preserving,
    phase_damping,
)


class TestKrausChannels:
    @pytest.mark.parametrize("gamma", [0.0, 0.1, 0.5, 1.0])
    def test_amplitude_damping_trace_preserving(self, gamma):
        assert is_trace_preserving(amplitude_damping(gamma))

    @pytest.mark.parametrize("lam", [0.0, 0.2, 1.0])
    def test_phase_damping_trace_preserving(self, lam):
        assert is_trace_preserving(phase_damping(lam))

    @pytest.mark.parametrize("p", [0.0, 0.3, 1.0])
    @pytest.mark.parametrize("n", [1, 2])
    def test_depolarizing_trace_preserving(self, p, n):
        assert is_trace_preserving(depolarizing(p, n))

    def test_bit_flip_trace_preserving(self):
        assert is_trace_preserving(bit_flip(0.25))

    def test_gamma_out_of_range(self):
        with pytest.raises(PlantError):
            amplitude_damping(1.5)
        with pytest.raises(PlantError):
            amplitude_damping(-0.1)

    def test_depolarizing_rejects_three_qubits(self):
        with pytest.raises(PlantError):
            depolarizing(0.1, 3)

    def test_compose_channels_trace_preserving(self):
        composed = compose_channels(amplitude_damping(0.3),
                                    phase_damping(0.2))
        assert is_trace_preserving(composed)

    @given(st.floats(min_value=0.0, max_value=1.0),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=30, deadline=None)
    def test_composition_property(self, gamma, lam):
        composed = compose_channels(amplitude_damping(gamma),
                                    phase_damping(lam))
        assert is_trace_preserving(composed)


class TestDecoherenceModel:
    def test_default_is_physical(self):
        model = DecoherenceModel()
        assert model.t2_ns <= 2 * model.t1_ns
        assert model.tphi_ns > 0

    def test_rejects_unphysical_t2(self):
        with pytest.raises(PlantError):
            DecoherenceModel(t1_ns=100.0, t2_ns=300.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(PlantError):
            DecoherenceModel(t1_ns=0.0, t2_ns=1.0)

    def test_zero_idle_is_identity(self):
        model = DecoherenceModel()
        kraus = model.idle_channel(0.0)
        assert len(kraus) == 1
        assert np.allclose(kraus[0], np.eye(2))

    def test_negative_idle_raises(self):
        with pytest.raises(PlantError):
            DecoherenceModel().idle_channel(-1.0)

    @pytest.mark.parametrize("duration", [1.0, 20.0, 300.0, 5000.0])
    def test_idle_channel_trace_preserving(self, duration):
        assert is_trace_preserving(DecoherenceModel().idle_channel(duration))

    def test_infidelity_grows_with_duration(self):
        model = DecoherenceModel()
        values = [model.average_gate_infidelity(t)
                  for t in (20.0, 100.0, 300.0)]
        assert values[0] < values[1] < values[2]

    def test_infidelity_magnitude_matches_fig12_slope(self):
        # Calibration target: roughly 0.6 % extra error over 300 ns of
        # idle (the interval-320ns vs interval-20ns difference in
        # Fig. 12 is 0.71 % - 0.10 % = 0.61 %; the full simulation adds
        # the remainder through the gate-error channel interplay).
        model = DecoherenceModel()
        extra = model.average_gate_infidelity(300.0)
        assert 0.004 < extra < 0.0075

    def test_tphi_infinite_when_t2_is_2t1(self):
        model = DecoherenceModel(t1_ns=100.0, t2_ns=200.0)
        assert math.isinf(model.tphi_ns)
        assert is_trace_preserving(model.idle_channel(50.0))


class TestReadoutErrorModel:
    def test_assignment_fidelity(self):
        model = ReadoutErrorModel(p01=0.1, p10=0.2)
        assert model.assignment_fidelity == pytest.approx(0.85)

    def test_apply_never_flips_when_perfect(self):
        model = ReadoutErrorModel(p01=0.0, p10=0.0)
        rng = np.random.default_rng(0)
        assert all(model.apply(bit, rng) == bit
                   for bit in (0, 1) for _ in range(10))

    def test_apply_always_flips_when_certain(self):
        model = ReadoutErrorModel(p01=1.0, p10=1.0)
        rng = np.random.default_rng(0)
        assert model.apply(0, rng) == 1
        assert model.apply(1, rng) == 0

    def test_apply_statistics(self):
        model = ReadoutErrorModel(p01=0.2, p10=0.0)
        rng = np.random.default_rng(42)
        flips = sum(model.apply(0, rng) for _ in range(5000))
        assert flips / 5000 == pytest.approx(0.2, abs=0.02)

    def test_apply_rejects_non_bit(self):
        with pytest.raises(PlantError):
            ReadoutErrorModel().apply(2, np.random.default_rng(0))

    def test_confusion_matrix_columns_sum_to_one(self):
        matrix = ReadoutErrorModel(p01=0.1, p10=0.3).confusion_matrix()
        assert np.allclose(matrix.sum(axis=0), 1.0)

    def test_correct_probabilities_inverts(self):
        model = ReadoutErrorModel(p01=0.08, p10=0.12)
        true = np.array([0.7, 0.3])
        measured = model.confusion_matrix() @ true
        corrected = model.correct_probabilities(measured)
        assert np.allclose(corrected, true)

    def test_rejects_out_of_range(self):
        with pytest.raises(PlantError):
            ReadoutErrorModel(p01=1.2)


class TestGateErrorModel:
    def test_channels_trace_preserving(self):
        model = GateErrorModel()
        assert is_trace_preserving(model.channel_for(1))
        assert is_trace_preserving(model.channel_for(2))

    def test_rejects_three_qubits(self):
        with pytest.raises(PlantError):
            GateErrorModel().channel_for(3)

    def test_rejects_bad_probability(self):
        with pytest.raises(PlantError):
            GateErrorModel(single_qubit_error=-0.1)


class TestNoiseModel:
    def test_defaults_are_calibrated(self):
        model = NoiseModel()
        # Readout fidelity ~0.905 (bounds active reset at ~82.7 %).
        assert model.readout.assignment_fidelity == pytest.approx(0.905,
                                                                  abs=0.01)

    def test_noiseless(self):
        model = NoiseModel.noiseless()
        assert model.readout.p01 == 0.0
        assert model.gate_error.single_qubit_error == 0.0
        kraus = model.decoherence.idle_channel(1e6)
        assert is_trace_preserving(kraus)
        # Idling must be essentially the identity.
        assert np.allclose(kraus[0], np.eye(2), atol=1e-4)
