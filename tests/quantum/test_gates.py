"""Tests for the gate library."""

import math

import numpy as np
import pytest

from repro.quantum import gates


class TestUnitarity:
    @pytest.mark.parametrize("name", sorted(gates.STANDARD_GATES))
    def test_standard_gates_unitary(self, name):
        assert gates.is_unitary(gates.STANDARD_GATES[name])

    @pytest.mark.parametrize("theta", [0.0, 0.1, math.pi / 2, math.pi, 5.0])
    def test_rotations_unitary(self, theta):
        assert gates.is_unitary(gates.rx(theta))
        assert gates.is_unitary(gates.ry(theta))
        assert gates.is_unitary(gates.rz(theta))

    def test_is_unitary_rejects_non_square(self):
        assert not gates.is_unitary(np.ones((2, 3)))

    def test_is_unitary_rejects_non_unitary(self):
        assert not gates.is_unitary(np.array([[1, 0], [0, 2.0]]))


class TestGateAlgebra:
    def test_x90_squared_is_x(self):
        assert gates.gates_equivalent(gates.X90 @ gates.X90, gates.X)

    def test_y90_squared_is_y(self):
        assert gates.gates_equivalent(gates.Y90 @ gates.Y90, gates.Y)

    def test_x90_xm90_cancel(self):
        assert gates.gates_equivalent(gates.X90 @ gates.XM90, gates.I)

    def test_y90_ym90_cancel(self):
        assert gates.gates_equivalent(gates.Y90 @ gates.YM90, gates.I)

    def test_hadamard_squared_identity(self):
        assert gates.gates_equivalent(gates.H @ gates.H, gates.I)

    def test_s_squared_is_z(self):
        assert gates.gates_equivalent(gates.S @ gates.S, gates.Z)

    def test_t_squared_is_s(self):
        assert gates.gates_equivalent(gates.T @ gates.T, gates.S)

    def test_pauli_products(self):
        assert gates.gates_equivalent(gates.X @ gates.Y, gates.Z)
        assert gates.gates_equivalent(gates.Y @ gates.Z, gates.X)
        assert gates.gates_equivalent(gates.Z @ gates.X, gates.Y)

    def test_rx_pi_is_x(self):
        assert gates.gates_equivalent(gates.rx(math.pi), gates.X)

    def test_ry_pi_is_y(self):
        assert gates.gates_equivalent(gates.ry(math.pi), gates.Y)

    def test_rz_pi_is_z(self):
        assert gates.gates_equivalent(gates.rz(math.pi), gates.Z)

    def test_rotation_composition(self):
        assert gates.gates_equivalent(gates.rx(0.3) @ gates.rx(0.4),
                                      gates.rx(0.7))

    def test_cz_is_diagonal_symmetric(self):
        assert np.allclose(gates.CZ, gates.CZ.T)
        assert np.allclose(np.abs(np.diag(gates.CZ)), 1.0)

    def test_cnot_from_cz_and_hadamards(self):
        # CNOT = (I (x) H) CZ (I (x) H) with qubit 1 as the target.
        ih = np.kron(gates.I, gates.H)
        assert gates.gates_equivalent(ih @ gates.CZ @ ih, gates.CNOT)

    def test_swap_from_three_cnots(self):
        cnot_01 = gates.CNOT
        # CNOT with control on qubit 1: conjugate by SWAP-free kron trick.
        cnot_10 = np.kron(gates.H, gates.H) @ gates.CNOT @ \
            np.kron(gates.H, gates.H)
        product = cnot_01 @ cnot_10 @ cnot_01
        assert gates.gates_equivalent(product, gates.SWAP)


class TestHelpers:
    def test_gate_matrix_lookup_case_insensitive(self):
        assert np.allclose(gates.gate_matrix("x90"), gates.X90)

    def test_gate_matrix_unknown(self):
        with pytest.raises(KeyError):
            gates.gate_matrix("NOSUCH")

    def test_gate_matrix_returns_copy(self):
        matrix = gates.gate_matrix("X")
        matrix[0, 0] = 99
        assert gates.STANDARD_GATES["X"][0, 0] == 0

    def test_kron_all(self):
        result = gates.kron_all([gates.I, gates.X])
        assert np.allclose(result, np.kron(gates.I, gates.X))
        assert gates.kron_all([]).shape == (1, 1)

    def test_gates_equivalent_detects_phase(self):
        assert gates.gates_equivalent(1j * gates.X, gates.X)
        assert not gates.gates_equivalent(gates.X, gates.Z)

    def test_gates_equivalent_shape_mismatch(self):
        assert not gates.gates_equivalent(gates.X, gates.CZ)

    def test_gates_equivalent_rejects_scaled(self):
        assert not gates.gates_equivalent(2.0 * gates.X, gates.X)
