"""Tests for the density-matrix simulator."""

import numpy as np
import pytest

from repro.core.errors import PlantError
from repro.quantum import DensityMatrix, Statevector, gates, zero_state
from repro.quantum.noise import amplitude_damping, depolarizing


class TestConstruction:
    def test_default_is_ground_state(self):
        rho = DensityMatrix(1)
        assert rho.probabilities()[0] == pytest.approx(1.0)
        assert rho.purity() == pytest.approx(1.0)

    def test_from_statevector(self):
        state = zero_state(1)
        state.apply_gate(gates.H, (0,))
        rho = DensityMatrix.from_statevector(state)
        assert rho.purity() == pytest.approx(1.0)
        assert rho.probability_one(0) == pytest.approx(0.5)

    def test_rejects_non_unit_trace(self):
        with pytest.raises(PlantError):
            DensityMatrix(1, np.eye(2))

    def test_rejects_wrong_shape(self):
        with pytest.raises(PlantError):
            DensityMatrix(2, np.eye(2) / 2)


class TestUnitaryEvolution:
    def test_x_flip(self):
        rho = DensityMatrix(1)
        rho.apply_gate(gates.X, (0,))
        assert rho.probability_one(0) == pytest.approx(1.0)

    def test_matches_statevector_on_circuit(self):
        state = zero_state(2)
        rho = DensityMatrix(2)
        for unitary, qubits in [(gates.H, (0,)), (gates.CNOT, (0, 1)),
                                (gates.S, (1,)), (gates.CZ, (0, 1))]:
            state.apply_gate(unitary, qubits)
            rho.apply_gate(unitary, qubits)
        expected = DensityMatrix.from_statevector(state)
        assert np.allclose(rho.matrix, expected.matrix, atol=1e-10)

    def test_qubit_order_embedding(self):
        # CNOT with control qubit 1, target qubit 0.
        rho = DensityMatrix(2)
        rho.apply_gate(gates.X, (1,))
        rho.apply_gate(gates.CNOT, (1, 0))
        assert rho.probabilities()[3] == pytest.approx(1.0)

    def test_three_qubit_middle_gate(self):
        rho = DensityMatrix(3)
        rho.apply_gate(gates.X, (1,))
        assert rho.probabilities()[0b010] == pytest.approx(1.0)

    def test_rejects_duplicate_qubits(self):
        rho = DensityMatrix(2)
        with pytest.raises(PlantError):
            rho.apply_gate(gates.CZ, (1, 1))


class TestChannels:
    def test_full_amplitude_damping_resets(self):
        rho = DensityMatrix(1)
        rho.apply_gate(gates.X, (0,))
        rho.apply_channel(amplitude_damping(1.0), (0,))
        assert rho.probability_one(0) == pytest.approx(0.0)

    def test_partial_damping(self):
        rho = DensityMatrix(1)
        rho.apply_gate(gates.X, (0,))
        rho.apply_channel(amplitude_damping(0.3), (0,))
        assert rho.probability_one(0) == pytest.approx(0.7)

    def test_depolarizing_reduces_purity(self):
        rho = DensityMatrix(1)
        rho.apply_channel(depolarizing(0.5), (0,))
        assert rho.purity() < 1.0
        assert np.trace(rho.matrix).real == pytest.approx(1.0)

    def test_channel_preserves_trace(self):
        rho = DensityMatrix(2)
        rho.apply_gate(gates.H, (0,))
        rho.apply_gate(gates.CNOT, (0, 1))
        rho.apply_channel(depolarizing(0.2, 2), (0, 1))
        assert np.trace(rho.matrix).real == pytest.approx(1.0)

    def test_channel_on_one_of_two_qubits(self):
        rho = DensityMatrix(2)
        rho.apply_gate(gates.X, (1,))
        rho.apply_channel(amplitude_damping(1.0), (1,))
        assert rho.probabilities()[0] == pytest.approx(1.0)


class TestMeasurement:
    def test_deterministic(self):
        rng = np.random.default_rng(0)
        rho = DensityMatrix(1)
        assert rho.measure(0, rng) == 0
        rho.apply_gate(gates.X, (0,))
        assert rho.measure(0, rng) == 1

    def test_collapse_renormalises(self):
        rho = DensityMatrix(1)
        rho.apply_gate(gates.H, (0,))
        rho.collapse(0, 1)
        assert rho.probability_one(0) == pytest.approx(1.0)
        assert np.trace(rho.matrix).real == pytest.approx(1.0)

    def test_collapse_impossible_outcome_raises(self):
        rho = DensityMatrix(1)
        with pytest.raises(PlantError):
            rho.collapse(0, 1)

    def test_collapse_rejects_non_bit(self):
        rho = DensityMatrix(1)
        with pytest.raises(PlantError):
            rho.collapse(0, 2)

    def test_entangled_correlation(self):
        rng = np.random.default_rng(5)
        for _ in range(20):
            rho = DensityMatrix(2)
            rho.apply_gate(gates.H, (0,))
            rho.apply_gate(gates.CNOT, (0, 1))
            assert rho.measure(0, rng) == rho.measure(1, rng)

    def test_probability_one_of_mixed_state(self):
        # Uniform-random-Pauli convention: with p = 1, X/Y/Z each hit
        # with probability 1/3, so P(1) = 2/3 from |0>.
        rho = DensityMatrix(1)
        rho.apply_channel(depolarizing(1.0), (0,))
        assert rho.probability_one(0) == pytest.approx(2.0 / 3.0)


class TestFidelity:
    def test_fidelity_with_pure_match(self):
        state = zero_state(2)
        state.apply_gate(gates.H, (0,))
        rho = DensityMatrix.from_statevector(state)
        assert rho.fidelity_with_pure(state) == pytest.approx(1.0)

    def test_fidelity_with_orthogonal(self):
        rho = DensityMatrix(1)
        excited = zero_state(1)
        excited.apply_gate(gates.X, (0,))
        assert rho.fidelity_with_pure(excited) == pytest.approx(0.0)

    def test_uhlmann_fidelity_pure_states(self):
        rho = DensityMatrix(1)
        sigma = DensityMatrix(1)
        sigma.apply_gate(gates.X90, (0,))
        assert rho.fidelity(sigma) == pytest.approx(0.5, abs=1e-8)

    def test_uhlmann_fidelity_self(self):
        rho = DensityMatrix(2)
        rho.apply_channel(depolarizing(0.3), (0,))
        assert rho.fidelity(rho.copy()) == pytest.approx(1.0, abs=1e-6)

    def test_mismatched_sizes(self):
        with pytest.raises(PlantError):
            DensityMatrix(1).fidelity_with_pure(zero_state(2))
