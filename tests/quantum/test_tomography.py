"""Tests for two-qubit tomography with MLE projection."""

import numpy as np
import pytest

from repro.core.errors import PlantError
from repro.quantum import DensityMatrix, gates, zero_state
from repro.quantum.tomography import (
    assemble_pauli_vector,
    correct_expectations_for_readout,
    expectation_from_counts,
    ideal_pauli_terms,
    linear_inversion,
    measurement_settings,
    mle_tomography,
    project_to_physical,
    state_fidelity,
)


def bell_state():
    state = zero_state(2)
    state.apply_gate(gates.H, (0,))
    state.apply_gate(gates.CNOT, (0, 1))
    return state


def exact_setting_expectations(state):
    """Build per-setting expectations directly from the ideal state."""
    terms = ideal_pauli_terms(state)
    settings = {}
    for setting in measurement_settings():
        basis0, basis1 = setting.bases
        settings[(basis0, basis1)] = {
            "ZI": terms[(basis0, "I")],
            "IZ": terms[("I", basis1)],
            "ZZ": terms[(basis0, basis1)],
        }
    return settings


class TestExpectationFromCounts:
    def test_all_zeros(self):
        values = expectation_from_counts({0: 100})
        assert values == {"ZI": 1.0, "IZ": 1.0, "ZZ": 1.0}

    def test_all_ones(self):
        values = expectation_from_counts({3: 50})
        assert values == {"ZI": -1.0, "IZ": -1.0, "ZZ": 1.0}

    def test_mixed(self):
        values = expectation_from_counts({0: 50, 3: 50})
        assert values["ZI"] == pytest.approx(0.0)
        assert values["ZZ"] == pytest.approx(1.0)

    def test_anticorrelated(self):
        values = expectation_from_counts({1: 50, 2: 50})
        assert values["ZZ"] == pytest.approx(-1.0)

    def test_empty_counts_raise(self):
        with pytest.raises(PlantError):
            expectation_from_counts({})


class TestReadoutCorrection:
    def test_perfect_readout_is_identity(self):
        values = {"ZI": 0.5, "IZ": -0.25, "ZZ": 0.75}
        corrected = correct_expectations_for_readout(values, 1.0, 1.0)
        assert corrected == values

    def test_correction_rescales(self):
        # Fidelity 0.9 scales single-qubit expectations by 0.8.
        values = {"ZI": 0.4, "IZ": 0.8, "ZZ": 0.64}
        corrected = correct_expectations_for_readout(values, 0.9, 0.9)
        assert corrected["ZI"] == pytest.approx(0.5)
        assert corrected["IZ"] == pytest.approx(1.0)
        assert corrected["ZZ"] == pytest.approx(1.0)

    def test_rejects_useless_readout(self):
        with pytest.raises(PlantError):
            correct_expectations_for_readout({"ZI": 0, "IZ": 0, "ZZ": 0},
                                             0.5, 0.9)


class TestReconstruction:
    def test_bell_state_exact(self):
        state = bell_state()
        rho = mle_tomography(exact_setting_expectations(state))
        assert state_fidelity(rho, state) == pytest.approx(1.0, abs=1e-9)

    def test_product_state_exact(self):
        state = zero_state(2)
        state.apply_gate(gates.X90, (0,))
        state.apply_gate(gates.Y90, (1,))
        rho = mle_tomography(exact_setting_expectations(state))
        assert state_fidelity(rho, state) == pytest.approx(1.0, abs=1e-9)

    def test_grover_target_state(self):
        # The |11>-oracle Grover output.
        state = zero_state(2)
        state.apply_gate(gates.X, (0,))
        state.apply_gate(gates.X, (1,))
        rho = mle_tomography(exact_setting_expectations(state))
        assert state_fidelity(rho, state) == pytest.approx(1.0, abs=1e-9)

    def test_noisy_expectations_still_physical(self):
        state = bell_state()
        rng = np.random.default_rng(3)
        settings = exact_setting_expectations(state)
        noisy = {key: {k: v + rng.normal(0, 0.05) for k, v in val.items()}
                 for key, val in settings.items()}
        rho = mle_tomography(noisy)
        eigenvalues = np.linalg.eigvalsh(rho.matrix)
        assert eigenvalues.min() >= -1e-10
        assert np.trace(rho.matrix).real == pytest.approx(1.0)
        assert state_fidelity(rho, state) > 0.9


class TestProjection:
    def test_projection_fixes_negative_eigenvalue(self):
        unphysical = np.diag([0.7, 0.5, -0.1, -0.1]).astype(complex)
        physical = project_to_physical(unphysical)
        eigenvalues = np.linalg.eigvalsh(physical)
        assert eigenvalues.min() >= -1e-12
        assert np.trace(physical).real == pytest.approx(1.0)

    def test_projection_preserves_physical_state(self):
        rho = DensityMatrix(2)
        rho.apply_gate(gates.H, (0,))
        projected = project_to_physical(rho.matrix)
        assert np.allclose(projected, rho.matrix, atol=1e-10)


class TestHelpers:
    def test_nine_settings(self):
        assert len(measurement_settings()) == 9

    def test_prerotations_shapes(self):
        for setting in measurement_settings():
            for unitary in setting.prerotations():
                assert unitary.shape == (2, 2)

    def test_ideal_pauli_terms_identity(self):
        terms = ideal_pauli_terms(zero_state(2))
        assert terms[("I", "I")] == pytest.approx(1.0)
        assert terms[("Z", "I")] == pytest.approx(1.0)
        assert terms[("X", "I")] == pytest.approx(0.0)

    def test_ideal_pauli_terms_rejects_one_qubit(self):
        with pytest.raises(PlantError):
            ideal_pauli_terms(zero_state(1))

    def test_linear_inversion_of_ground_state(self):
        terms = ideal_pauli_terms(zero_state(2))
        rho = linear_inversion(terms)
        assert rho[0, 0] == pytest.approx(1.0)

    def test_assemble_pauli_vector_averages(self):
        state = bell_state()
        settings = exact_setting_expectations(state)
        terms = assemble_pauli_vector(settings)
        # Bell state: <XX> = 1, <ZZ> = 1, <YY> = -1, <XZ> = 0.
        assert terms[("X", "X")] == pytest.approx(1.0)
        assert terms[("Z", "Z")] == pytest.approx(1.0)
        assert terms[("Y", "Y")] == pytest.approx(-1.0)
        assert terms[("X", "Z")] == pytest.approx(0.0)
