"""Tests for the statevector simulator."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import PlantError
from repro.quantum import Statevector, basis_state, gates, zero_state


class TestConstruction:
    def test_zero_state(self):
        state = zero_state(2)
        assert state.probability(0) == pytest.approx(1.0)

    def test_basis_state(self):
        state = basis_state(2, 2)  # |10>
        assert state.probability(2) == pytest.approx(1.0)

    def test_basis_state_out_of_range(self):
        with pytest.raises(PlantError):
            basis_state(2, 4)

    def test_rejects_zero_qubits(self):
        with pytest.raises(PlantError):
            Statevector(0)

    def test_rejects_unnormalised(self):
        with pytest.raises(PlantError):
            Statevector(1, np.array([1.0, 1.0]))

    def test_rejects_wrong_shape(self):
        with pytest.raises(PlantError):
            Statevector(2, np.array([1.0, 0.0]))


class TestSingleQubitGates:
    def test_x_flips(self):
        state = zero_state(1)
        state.apply_gate(gates.X, (0,))
        assert state.probability(1) == pytest.approx(1.0)

    def test_h_makes_superposition(self):
        state = zero_state(1)
        state.apply_gate(gates.H, (0,))
        assert state.probability(0) == pytest.approx(0.5)
        assert state.probability(1) == pytest.approx(0.5)

    def test_x90_gives_half_probability(self):
        state = zero_state(1)
        state.apply_gate(gates.X90, (0,))
        assert state.measure_probability_one(0) == pytest.approx(0.5)

    def test_gate_on_msb_convention(self):
        # Qubit 0 is the most significant bit: X on qubit 0 of |00>
        # gives |10> = index 2.
        state = zero_state(2)
        state.apply_gate(gates.X, (0,))
        assert state.probability(2) == pytest.approx(1.0)

    def test_gate_on_lsb(self):
        state = zero_state(2)
        state.apply_gate(gates.X, (1,))
        assert state.probability(1) == pytest.approx(1.0)

    def test_rejects_bad_qubit(self):
        state = zero_state(1)
        with pytest.raises(PlantError):
            state.apply_gate(gates.X, (3,))

    def test_rejects_duplicate_qubits(self):
        state = zero_state(2)
        with pytest.raises(PlantError):
            state.apply_gate(gates.CZ, (0, 0))

    def test_rejects_shape_mismatch(self):
        state = zero_state(2)
        with pytest.raises(PlantError):
            state.apply_gate(gates.CZ, (0,))


class TestTwoQubitGates:
    def test_cnot_ordering(self):
        # Control = first listed qubit.
        state = zero_state(2)
        state.apply_gate(gates.X, (0,))
        state.apply_gate(gates.CNOT, (0, 1))
        assert state.probability(3) == pytest.approx(1.0)

    def test_cnot_reversed_targets(self):
        state = zero_state(2)
        state.apply_gate(gates.X, (1,))
        state.apply_gate(gates.CNOT, (1, 0))
        assert state.probability(3) == pytest.approx(1.0)

    def test_bell_state(self):
        state = zero_state(2)
        state.apply_gate(gates.H, (0,))
        state.apply_gate(gates.CNOT, (0, 1))
        assert state.probability(0) == pytest.approx(0.5)
        assert state.probability(3) == pytest.approx(0.5)

    def test_cz_phase(self):
        state = zero_state(2)
        state.apply_gate(gates.X, (0,))
        state.apply_gate(gates.X, (1,))
        state.apply_gate(gates.CZ, (0, 1))
        amplitudes = state.amplitudes
        assert amplitudes[3] == pytest.approx(-1.0)

    def test_swap(self):
        state = zero_state(2)
        state.apply_gate(gates.X, (0,))
        state.apply_gate(gates.SWAP, (0, 1))
        assert state.probability(1) == pytest.approx(1.0)

    def test_three_qubit_embedding(self):
        state = zero_state(3)
        state.apply_gate(gates.X, (0,))
        state.apply_gate(gates.CNOT, (0, 2))
        assert state.probability(0b101) == pytest.approx(1.0)


class TestMeasurement:
    def test_deterministic_measure(self):
        state = zero_state(1)
        rng = np.random.default_rng(1)
        assert state.measure(0, rng) == 0
        state.apply_gate(gates.X, (0,))
        assert state.measure(0, rng) == 1

    def test_measurement_collapses(self):
        rng = np.random.default_rng(7)
        state = zero_state(1)
        state.apply_gate(gates.H, (0,))
        result = state.measure(0, rng)
        # A second measurement must agree.
        assert state.measure(0, rng) == result

    def test_entangled_measurement_correlates(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            state = zero_state(2)
            state.apply_gate(gates.H, (0,))
            state.apply_gate(gates.CNOT, (0, 1))
            assert state.measure(0, rng) == state.measure(1, rng)

    def test_measure_statistics(self):
        rng = np.random.default_rng(11)
        ones = 0
        shots = 2000
        for _ in range(shots):
            state = zero_state(1)
            state.apply_gate(gates.X90, (0,))
            ones += state.measure(0, rng)
        assert ones / shots == pytest.approx(0.5, abs=0.05)

    def test_collapse_zero_probability_raises(self):
        state = zero_state(1)
        with pytest.raises(PlantError):
            state.collapse(0, 1)

    def test_probability_out_of_range(self):
        state = zero_state(1)
        with pytest.raises(PlantError):
            state.measure_probability_one(5)


class TestFidelity:
    def test_self_fidelity(self):
        state = zero_state(2)
        assert state.fidelity(state.copy()) == pytest.approx(1.0)

    def test_orthogonal_fidelity(self):
        assert zero_state(1).fidelity(basis_state(1, 1)) == pytest.approx(0.0)

    def test_mismatched_sizes(self):
        with pytest.raises(PlantError):
            zero_state(1).fidelity(zero_state(2))

    def test_equiv_up_to_phase(self):
        state = zero_state(1)
        phased = Statevector(1, np.array([1j, 0.0]))
        assert state.equiv_up_to_phase(phased)


@st.composite
def random_single_gates(draw):
    """A short random sequence of standard single-qubit gate names."""
    names = st.sampled_from(["X", "Y", "Z", "H", "S", "T", "X90", "Y90"])
    return draw(st.lists(names, min_size=1, max_size=8))


class TestProperties:
    @given(random_single_gates())
    @settings(max_examples=40, deadline=None)
    def test_norm_preserved(self, sequence):
        state = zero_state(1)
        for name in sequence:
            state.apply_gate(gates.STANDARD_GATES[name], (0,))
        assert np.sum(state.probabilities()) == pytest.approx(1.0)

    @given(random_single_gates())
    @settings(max_examples=40, deadline=None)
    def test_apply_then_inverse_is_identity(self, sequence):
        state = zero_state(1)
        for name in sequence:
            state.apply_gate(gates.STANDARD_GATES[name], (0,))
        for name in reversed(sequence):
            state.apply_gate(gates.STANDARD_GATES[name].conj().T, (0,))
        assert state.probability(0) == pytest.approx(1.0)

    @given(st.integers(min_value=1, max_value=5),
           st.integers(min_value=0, max_value=31))
    @settings(max_examples=30, deadline=None)
    def test_basis_state_probabilities(self, num_qubits, index):
        index = index % (1 << num_qubits)
        state = basis_state(num_qubits, index)
        probabilities = state.probabilities()
        assert probabilities[index] == pytest.approx(1.0)
        assert np.sum(probabilities) == pytest.approx(1.0)
