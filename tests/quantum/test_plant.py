"""Tests for the timed quantum plant."""

import numpy as np
import pytest

from repro.core.errors import PlantError
from repro.quantum import NoiseModel, QuantumPlant, gates
from repro.quantum.noise import DecoherenceModel, GateErrorModel, \
    ReadoutErrorModel
from repro.topology import surface7, two_qubit_chip


def noiseless_plant(chip=None, seed=0):
    return QuantumPlant(chip or two_qubit_chip(),
                        noise=NoiseModel.noiseless(),
                        rng=np.random.default_rng(seed))


class TestAddressMapping:
    def test_sparse_addresses(self):
        plant = noiseless_plant()
        assert plant.qubit_index(0) == 0
        assert plant.qubit_index(2) == 1

    def test_unknown_address(self):
        plant = noiseless_plant()
        with pytest.raises(PlantError):
            plant.qubit_index(1)


class TestUnitaries:
    def test_x_then_measure(self):
        plant = noiseless_plant()
        plant.apply_unitary("X", gates.X, (2,), start_ns=0.0,
                            duration_ns=20.0)
        assert plant.probability_one(2) == pytest.approx(1.0)
        assert plant.measure(2, start_ns=20.0, duration_ns=300.0) == 1

    def test_two_qubit_gate(self):
        plant = noiseless_plant()
        plant.apply_unitary("X", gates.X, (0,), 0.0, 20.0)
        plant.apply_unitary("CNOT", gates.CNOT, (0, 2), 20.0, 40.0)
        assert plant.probability_one(2) == pytest.approx(1.0)

    def test_overlap_detection(self):
        plant = noiseless_plant()
        plant.apply_unitary("X", gates.X, (0,), 0.0, 20.0)
        with pytest.raises(PlantError):
            plant.apply_unitary("Y", gates.Y, (0,), 10.0, 20.0)

    def test_back_to_back_allowed(self):
        plant = noiseless_plant()
        plant.apply_unitary("X", gates.X, (0,), 0.0, 20.0)
        plant.apply_unitary("X", gates.X, (0,), 20.0, 20.0)
        assert plant.probability_one(0) == pytest.approx(0.0)

    def test_empty_qubits_rejected(self):
        plant = noiseless_plant()
        with pytest.raises(PlantError):
            plant.apply_unitary("X", gates.X, (), 0.0, 20.0)

    def test_operations_log(self):
        plant = noiseless_plant()
        plant.apply_unitary("X90", gates.X90, (0,), 0.0, 20.0)
        plant.measure(0, 20.0, 300.0)
        names = [op.name for op in plant.operations_log]
        assert names == ["X90", "MEASZ"]


class TestShotLifecycle:
    def test_reset_shot(self):
        plant = noiseless_plant()
        plant.apply_unitary("X", gates.X, (0,), 0.0, 20.0)
        plant.reset_shot()
        assert plant.probability_one(0) == pytest.approx(0.0)
        assert plant.qubit_free_at(0) == 0.0
        assert plant.operations_log == []

    def test_qubit_free_at(self):
        plant = noiseless_plant()
        plant.apply_unitary("X", gates.X, (2,), 100.0, 20.0)
        assert plant.qubit_free_at(2) == pytest.approx(120.0)
        with pytest.raises(PlantError):
            plant.qubit_free_at(5)


class TestIdleDecoherence:
    def test_t1_decay_during_idle(self):
        noise = NoiseModel(
            decoherence=DecoherenceModel(t1_ns=1000.0, t2_ns=1000.0),
            readout=ReadoutErrorModel(0.0, 0.0),
            gate_error=GateErrorModel(0.0, 0.0))
        plant = QuantumPlant(two_qubit_chip(), noise=noise,
                             rng=np.random.default_rng(0))
        plant.apply_unitary("X", gates.X, (0,), 0.0, 20.0)
        # Idle for one T1: excited population should fall to ~1/e.
        plant.apply_unitary("I", gates.I, (0,), 1020.0, 20.0)
        assert plant.probability_one(0) == pytest.approx(np.exp(-1.0),
                                                         abs=0.01)

    def test_no_decay_when_noiseless(self):
        plant = noiseless_plant()
        plant.apply_unitary("X", gates.X, (0,), 0.0, 20.0)
        plant.apply_unitary("I", gates.I, (0,), 100000.0, 20.0)
        assert plant.probability_one(0) == pytest.approx(1.0, abs=1e-6)

    def test_idle_all_until(self):
        noise = NoiseModel(
            decoherence=DecoherenceModel(t1_ns=1000.0, t2_ns=1000.0),
            readout=ReadoutErrorModel(0.0, 0.0),
            gate_error=GateErrorModel(0.0, 0.0))
        plant = QuantumPlant(two_qubit_chip(), noise=noise,
                             rng=np.random.default_rng(0))
        plant.apply_unitary("X", gates.X, (0,), 0.0, 20.0)
        plant.idle_all_until(1020.0)
        assert plant.probability_one(0) == pytest.approx(np.exp(-1.0),
                                                         abs=0.01)
        # Idling backwards is a no-op, not an error.
        plant.idle_all_until(500.0)


class TestGateError:
    def test_gate_error_reduces_fidelity(self):
        noise = NoiseModel(
            decoherence=DecoherenceModel(t1_ns=1e12, t2_ns=1e12),
            readout=ReadoutErrorModel(0.0, 0.0),
            gate_error=GateErrorModel(single_qubit_error=0.5,
                                      two_qubit_error=0.0))
        plant = QuantumPlant(two_qubit_chip(), noise=noise,
                             rng=np.random.default_rng(0))
        plant.apply_unitary("X", gates.X, (0,), 0.0, 20.0)
        # Depolarizing with p=0.5 leaves P(1) = 1 - p*2/3 = 2/3.
        assert plant.probability_one(0) == pytest.approx(2.0 / 3.0, abs=1e-9)

    def test_gate_error_can_be_suppressed(self):
        noise = NoiseModel(
            decoherence=DecoherenceModel(t1_ns=1e12, t2_ns=1e12),
            readout=ReadoutErrorModel(0.0, 0.0),
            gate_error=GateErrorModel(single_qubit_error=0.5,
                                      two_qubit_error=0.5))
        plant = QuantumPlant(two_qubit_chip(), noise=noise,
                             rng=np.random.default_rng(0))
        plant.apply_unitary("X", gates.X, (0,), 0.0, 20.0,
                            apply_gate_error=False)
        assert plant.probability_one(0) == pytest.approx(1.0)


class TestMeasurementSampling:
    def test_measure_statistics(self):
        counts = 0
        shots = 1000
        plant = noiseless_plant(seed=123)
        for _ in range(shots):
            plant.reset_shot()
            plant.apply_unitary("X90", gates.X90, (0,), 0.0, 20.0)
            counts += plant.measure(0, 20.0, 300.0)
        assert counts / shots == pytest.approx(0.5, abs=0.05)

    def test_measure_busy_time(self):
        plant = noiseless_plant()
        plant.measure(0, 0.0, 300.0)
        with pytest.raises(PlantError):
            plant.apply_unitary("X", gates.X, (0,), 100.0, 20.0)
        plant.apply_unitary("X", gates.X, (0,), 300.0, 20.0)

    def test_seven_qubit_chip_plant(self):
        plant = noiseless_plant(chip=surface7())
        plant.apply_unitary("X", gates.X, (6,), 0.0, 20.0)
        assert plant.probability_one(6) == pytest.approx(1.0)
        assert plant.probability_one(0) == pytest.approx(0.0)
