"""Stabilizer-tableau backend unit tests.

The tableau must agree *exactly* with the dense density-matrix
simulator on every Clifford circuit: same pre-collapse probabilities
after every gate, same post-collapse states along every forced outcome
path.  The Clifford-action derivation must classify every configured
gate correctly, and the backend must refuse what it cannot represent
(non-Clifford gates, non-Pauli idle decoherence).
"""

import numpy as np
import pytest

from repro.core.errors import PlantError
from repro.quantum import gates
from repro.quantum.density_matrix import DensityMatrix
from repro.quantum.noise import (
    DecoherenceModel,
    GateErrorModel,
    NoiseModel,
)
from repro.quantum.stabilizer import (
    StabilizerBackend,
    StabilizerTableau,
    cached_clifford_action,
    clifford_action_of,
    is_clifford,
)

CLIFFORD_1Q = ["I", "X", "Y", "Z", "H", "S", "SDG",
               "X90", "XM90", "Y90", "YM90"]
CLIFFORD_2Q = ["CZ", "CNOT", "SWAP"]


class TestCliffordDetection:
    def test_standard_cliffords_detected(self):
        for name in CLIFFORD_1Q + CLIFFORD_2Q:
            assert is_clifford(gates.STANDARD_GATES[name]), name

    def test_non_cliffords_rejected(self):
        assert not is_clifford(gates.T)
        assert not is_clifford(gates.TDG)
        assert not is_clifford(gates.rx(0.3))
        assert not is_clifford(gates.ry(1.0))

    def test_action_phase_invariant(self):
        """A global phase must not change the derived action."""
        plain = clifford_action_of(gates.H)
        phased = clifford_action_of(np.exp(1j * 0.7) * gates.H)
        assert np.array_equal(plain.bits, phased.bits)
        assert np.array_equal(plain.sign, phased.sign)

    def test_cache_returns_same_object(self):
        assert cached_clifford_action(gates.CZ) is \
            cached_clifford_action(gates.CZ)


class TestTableauVsDense:
    """Differential ground truth: the exact density matrix."""

    def test_random_clifford_circuits_match_dense(self):
        rng = np.random.default_rng(7)
        for trial in range(30):
            n = int(rng.integers(1, 5))
            tableau = StabilizerTableau(n)
            dense = DensityMatrix(n)
            for _ in range(12):
                if n >= 2 and rng.random() < 0.35:
                    name = rng.choice(CLIFFORD_2Q)
                    a, b = (int(q) for q in
                            rng.choice(n, size=2, replace=False))
                    targets = (a, b)
                else:
                    name = rng.choice(CLIFFORD_1Q)
                    targets = (int(rng.integers(0, n)),)
                unitary = gates.STANDARD_GATES[name]
                tableau.apply(cached_clifford_action(unitary), targets)
                dense.apply_gate(unitary, targets)
                for qubit in range(n):
                    assert tableau.probability_one(qubit) == \
                        pytest.approx(dense.probability_one(qubit),
                                      abs=1e-9)

    def test_collapse_paths_match_dense(self):
        """Forcing the same outcomes must keep both simulators equal."""
        rng = np.random.default_rng(11)
        for trial in range(10):
            n = 3
            tableau = StabilizerTableau(n)
            dense = DensityMatrix(n)
            for qubit in range(n):
                tableau.apply(cached_clifford_action(gates.H), (qubit,))
                dense.apply_gate(gates.H, (qubit,))
            tableau.apply(cached_clifford_action(gates.CZ), (0, 1))
            dense.apply_gate(gates.CZ, (0, 1))
            for qubit in range(n):
                outcome = int(rng.integers(0, 2))
                dense.collapse(qubit, outcome)
                tableau.collapse(qubit, outcome)
                for probe in range(n):
                    assert tableau.probability_one(probe) == \
                        pytest.approx(dense.probability_one(probe),
                                      abs=1e-9)

    def test_bell_pair_correlations(self):
        tableau = StabilizerTableau(2)
        tableau.apply(cached_clifford_action(gates.H), (0,))
        tableau.apply(cached_clifford_action(gates.CNOT), (0, 1))
        assert tableau.probability_one(0) == 0.5
        tableau.collapse(0, 1)
        assert tableau.probability_one(1) == 1.0   # perfectly correlated


class TestTableauMeasurement:
    def test_deterministic_outcomes(self):
        tableau = StabilizerTableau(2)
        assert tableau.probability_one(0) == 0.0
        tableau.apply(cached_clifford_action(gates.X), (0,))
        assert tableau.probability_one(0) == 1.0
        assert tableau.probability_one(1) == 0.0

    def test_impossible_collapse_raises(self):
        tableau = StabilizerTableau(1)
        tableau.apply(cached_clifford_action(gates.X), (0,))
        with pytest.raises(PlantError, match="probability 0"):
            tableau.collapse(0, 0)

    def test_measure_statistics(self):
        rng = np.random.default_rng(3)
        ones = 0
        for _ in range(400):
            tableau = StabilizerTableau(1)
            tableau.apply(cached_clifford_action(gates.H), (0,))
            ones += tableau.measure(0, rng)
        assert 140 < ones < 260   # ~N(200, 10)

    def test_measurement_collapses(self):
        rng = np.random.default_rng(5)
        tableau = StabilizerTableau(1)
        tableau.apply(cached_clifford_action(gates.H), (0,))
        first = tableau.measure(0, rng)
        assert tableau.probability_one(0) == float(first)
        assert tableau.measure(0, rng) == first

    def test_stabilizer_strings(self):
        tableau = StabilizerTableau(2)
        assert tableau.stabilizer_strings() == ["+ZI", "+IZ"]
        tableau.apply(cached_clifford_action(gates.H), (0,))
        tableau.apply(cached_clifford_action(gates.CNOT), (0, 1))
        assert set(tableau.stabilizer_strings()) == {"+XX", "+ZZ"}


class TestPauliInjection:
    def test_x_error_flips_outcome(self):
        tableau = StabilizerTableau(2)
        tableau.apply_pauli(0b01, (1,))   # X on qubit 1
        assert tableau.probability_one(1) == 1.0
        assert tableau.probability_one(0) == 0.0

    def test_z_error_invisible_on_basis_state(self):
        tableau = StabilizerTableau(1)
        tableau.apply_pauli(0b10, (0,))   # Z on |0> is a no-op
        assert tableau.probability_one(0) == 0.0

    def test_two_qubit_pauli(self):
        tableau = StabilizerTableau(2)
        tableau.apply_pauli(0b0101, (0, 1))   # X on both
        assert tableau.probability_one(0) == 1.0
        assert tableau.probability_one(1) == 1.0


class TestStabilizerBackend:
    def test_snapshot_restore_roundtrip(self):
        backend = StabilizerBackend(2)
        backend.apply_gate("H", gates.H, (0,))
        snapshot = backend.snapshot()
        backend.apply_gate("X", gates.X, (1,))
        assert backend.probability_one(1) == 1.0
        backend.restore(snapshot)
        assert backend.probability_one(1) == 0.0
        assert backend.probability_one(0) == 0.5
        # The snapshot is never aliased: restoring twice works.
        backend.apply_gate("X", gates.X, (1,))
        backend.restore(snapshot)
        assert backend.probability_one(1) == 0.0

    def test_reset(self):
        backend = StabilizerBackend(3)
        backend.apply_gate("X", gates.X, (2,))
        backend.reset()
        for qubit in range(3):
            assert backend.probability_one(qubit) == 0.0

    def test_non_clifford_gate_raises(self):
        backend = StabilizerBackend(1)
        with pytest.raises(PlantError, match="not Clifford"):
            backend.apply_gate("T", gates.T, (0,))

    def test_idle_refused_unless_negligible(self):
        backend = StabilizerBackend(1)
        noiseless = NoiseModel.noiseless()
        backend.apply_idle(0, 500.0, noiseless.decoherence)  # no-op
        with pytest.raises(PlantError, match="not a Pauli channel"):
            backend.apply_idle(0, 500.0, DecoherenceModel())

    def test_gate_error_sampling_statistics(self):
        """p=1 depolarizing on |0>: X or Y flip (2 of 3 Paulis) ->
        P(1) = 2/3 over trials; the Z third leaves |0> alone."""
        rng = np.random.default_rng(17)
        error = GateErrorModel(single_qubit_error=1.0,
                               two_qubit_error=0.07)
        flips = 0
        trials = 600
        for _ in range(trials):
            backend = StabilizerBackend(1)
            backend.apply_gate_error((0,), error, rng)
            flips += backend.probability_one(0) == 1.0
        assert 0.58 < flips / trials < 0.75

    def test_zero_gate_error_is_noop(self):
        backend = StabilizerBackend(1)
        error = GateErrorModel(single_qubit_error=0.0,
                               two_qubit_error=0.0)
        rng = np.random.default_rng(0)
        for _ in range(50):
            backend.apply_gate_error((0,), error, rng)
        assert backend.probability_one(0) == 0.0

    def test_density_matrix_not_exposed(self):
        backend = StabilizerBackend(2)
        with pytest.raises(PlantError, match="density matrix"):
            backend.density_matrix()
