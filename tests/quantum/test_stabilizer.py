"""Stabilizer-tableau backend unit tests.

The tableau must agree *exactly* with the dense density-matrix
simulator on every Clifford circuit: same pre-collapse probabilities
after every gate, same post-collapse states along every forced outcome
path.  The Clifford-action derivation must classify every configured
gate correctly, and the backend must refuse what it cannot represent
(non-Clifford gates, non-Pauli idle decoherence).
"""

import numpy as np
import pytest

from repro.core.errors import PlantError
from repro.quantum import gates
from repro.quantum.density_matrix import DensityMatrix
from repro.quantum.noise import (
    DecoherenceModel,
    GateErrorModel,
    NoiseModel,
)
from repro.quantum.stabilizer import (
    StabilizerBackend,
    StabilizerTableau,
    cached_clifford_action,
    clifford_action_of,
    is_clifford,
)

CLIFFORD_1Q = ["I", "X", "Y", "Z", "H", "S", "SDG",
               "X90", "XM90", "Y90", "YM90"]
CLIFFORD_2Q = ["CZ", "CNOT", "SWAP"]


class TestCliffordDetection:
    def test_standard_cliffords_detected(self):
        for name in CLIFFORD_1Q + CLIFFORD_2Q:
            assert is_clifford(gates.STANDARD_GATES[name]), name

    def test_non_cliffords_rejected(self):
        assert not is_clifford(gates.T)
        assert not is_clifford(gates.TDG)
        assert not is_clifford(gates.rx(0.3))
        assert not is_clifford(gates.ry(1.0))

    def test_action_phase_invariant(self):
        """A global phase must not change the derived action."""
        plain = clifford_action_of(gates.H)
        phased = clifford_action_of(np.exp(1j * 0.7) * gates.H)
        assert np.array_equal(plain.bits, phased.bits)
        assert np.array_equal(plain.sign, phased.sign)

    def test_cache_returns_same_object(self):
        assert cached_clifford_action(gates.CZ) is \
            cached_clifford_action(gates.CZ)


class TestTableauVsDense:
    """Differential ground truth: the exact density matrix."""

    def test_random_clifford_circuits_match_dense(self):
        rng = np.random.default_rng(7)
        for trial in range(30):
            n = int(rng.integers(1, 5))
            tableau = StabilizerTableau(n)
            dense = DensityMatrix(n)
            for _ in range(12):
                if n >= 2 and rng.random() < 0.35:
                    name = rng.choice(CLIFFORD_2Q)
                    a, b = (int(q) for q in
                            rng.choice(n, size=2, replace=False))
                    targets = (a, b)
                else:
                    name = rng.choice(CLIFFORD_1Q)
                    targets = (int(rng.integers(0, n)),)
                unitary = gates.STANDARD_GATES[name]
                tableau.apply(cached_clifford_action(unitary), targets)
                dense.apply_gate(unitary, targets)
                for qubit in range(n):
                    assert tableau.probability_one(qubit) == \
                        pytest.approx(dense.probability_one(qubit),
                                      abs=1e-9)

    def test_collapse_paths_match_dense(self):
        """Forcing the same outcomes must keep both simulators equal."""
        rng = np.random.default_rng(11)
        for trial in range(10):
            n = 3
            tableau = StabilizerTableau(n)
            dense = DensityMatrix(n)
            for qubit in range(n):
                tableau.apply(cached_clifford_action(gates.H), (qubit,))
                dense.apply_gate(gates.H, (qubit,))
            tableau.apply(cached_clifford_action(gates.CZ), (0, 1))
            dense.apply_gate(gates.CZ, (0, 1))
            for qubit in range(n):
                outcome = int(rng.integers(0, 2))
                dense.collapse(qubit, outcome)
                tableau.collapse(qubit, outcome)
                for probe in range(n):
                    assert tableau.probability_one(probe) == \
                        pytest.approx(dense.probability_one(probe),
                                      abs=1e-9)

    def test_bell_pair_correlations(self):
        tableau = StabilizerTableau(2)
        tableau.apply(cached_clifford_action(gates.H), (0,))
        tableau.apply(cached_clifford_action(gates.CNOT), (0, 1))
        assert tableau.probability_one(0) == 0.5
        tableau.collapse(0, 1)
        assert tableau.probability_one(1) == 1.0   # perfectly correlated


class TestTableauMeasurement:
    def test_deterministic_outcomes(self):
        tableau = StabilizerTableau(2)
        assert tableau.probability_one(0) == 0.0
        tableau.apply(cached_clifford_action(gates.X), (0,))
        assert tableau.probability_one(0) == 1.0
        assert tableau.probability_one(1) == 0.0

    def test_impossible_collapse_raises(self):
        tableau = StabilizerTableau(1)
        tableau.apply(cached_clifford_action(gates.X), (0,))
        with pytest.raises(PlantError, match="probability 0"):
            tableau.collapse(0, 0)

    def test_measure_statistics(self):
        rng = np.random.default_rng(3)
        ones = 0
        for _ in range(400):
            tableau = StabilizerTableau(1)
            tableau.apply(cached_clifford_action(gates.H), (0,))
            ones += tableau.measure(0, rng)
        assert 140 < ones < 260   # ~N(200, 10)

    def test_measurement_collapses(self):
        rng = np.random.default_rng(5)
        tableau = StabilizerTableau(1)
        tableau.apply(cached_clifford_action(gates.H), (0,))
        first = tableau.measure(0, rng)
        assert tableau.probability_one(0) == float(first)
        assert tableau.measure(0, rng) == first

    def test_stabilizer_strings(self):
        tableau = StabilizerTableau(2)
        assert tableau.stabilizer_strings() == ["+ZI", "+IZ"]
        tableau.apply(cached_clifford_action(gates.H), (0,))
        tableau.apply(cached_clifford_action(gates.CNOT), (0, 1))
        assert set(tableau.stabilizer_strings()) == {"+XX", "+ZZ"}


class TestPauliInjection:
    def test_x_error_flips_outcome(self):
        tableau = StabilizerTableau(2)
        tableau.apply_pauli(0b01, (1,))   # X on qubit 1
        assert tableau.probability_one(1) == 1.0
        assert tableau.probability_one(0) == 0.0

    def test_z_error_invisible_on_basis_state(self):
        tableau = StabilizerTableau(1)
        tableau.apply_pauli(0b10, (0,))   # Z on |0> is a no-op
        assert tableau.probability_one(0) == 0.0

    def test_two_qubit_pauli(self):
        tableau = StabilizerTableau(2)
        tableau.apply_pauli(0b0101, (0, 1))   # X on both
        assert tableau.probability_one(0) == 1.0
        assert tableau.probability_one(1) == 1.0


class TestStabilizerBackend:
    def test_snapshot_restore_roundtrip(self):
        backend = StabilizerBackend(2)
        backend.apply_gate("H", gates.H, (0,))
        snapshot = backend.snapshot()
        backend.apply_gate("X", gates.X, (1,))
        assert backend.probability_one(1) == 1.0
        backend.restore(snapshot)
        assert backend.probability_one(1) == 0.0
        assert backend.probability_one(0) == 0.5
        # The snapshot is never aliased: restoring twice works.
        backend.apply_gate("X", gates.X, (1,))
        backend.restore(snapshot)
        assert backend.probability_one(1) == 0.0

    def test_reset(self):
        backend = StabilizerBackend(3)
        backend.apply_gate("X", gates.X, (2,))
        backend.reset()
        for qubit in range(3):
            assert backend.probability_one(qubit) == 0.0

    def test_non_clifford_gate_raises(self):
        backend = StabilizerBackend(1)
        with pytest.raises(PlantError, match="not Clifford"):
            backend.apply_gate("T", gates.T, (0,))

    def test_idle_refused_unless_negligible(self):
        backend = StabilizerBackend(1)
        noiseless = NoiseModel.noiseless()
        backend.apply_idle(0, 500.0, noiseless.decoherence)  # no-op
        with pytest.raises(PlantError, match="not a Pauli channel"):
            backend.apply_idle(0, 500.0, DecoherenceModel())

    def test_gate_error_sampling_statistics(self):
        """p=1 depolarizing on |0>: X or Y flip (2 of 3 Paulis) ->
        P(1) = 2/3 over trials; the Z third leaves |0> alone."""
        rng = np.random.default_rng(17)
        error = GateErrorModel(single_qubit_error=1.0,
                               two_qubit_error=0.07)
        flips = 0
        trials = 600
        for _ in range(trials):
            backend = StabilizerBackend(1)
            backend.apply_gate_error((0,), error, rng)
            flips += backend.probability_one(0) == 1.0
        assert 0.58 < flips / trials < 0.75

    def test_zero_gate_error_is_noop(self):
        backend = StabilizerBackend(1)
        error = GateErrorModel(single_qubit_error=0.0,
                               two_qubit_error=0.0)
        rng = np.random.default_rng(0)
        for _ in range(50):
            backend.apply_gate_error((0,), error, rng)
        assert backend.probability_one(0) == 0.0

    def test_density_matrix_not_exposed(self):
        backend = StabilizerBackend(2)
        with pytest.raises(PlantError, match="density matrix"):
            backend.density_matrix()


class BooleanTableau:
    """The pre-bit-packing boolean tableau, ported verbatim as the
    differential reference for the packed implementation: one uint8
    0/1 entry per bit, fancy-indexed gate updates.  Only the paths the
    property tests drive are kept (gates, Pauli injection,
    probabilities, collapse, measurement)."""

    def __init__(self, num_qubits: int):
        self.num_qubits = num_qubits
        n = num_qubits
        self.x = np.zeros((2 * n, n), dtype=np.uint8)
        self.z = np.zeros((2 * n, n), dtype=np.uint8)
        self.r = np.zeros(2 * n, dtype=np.uint8)
        self.x[np.arange(n), np.arange(n)] = 1
        self.z[np.arange(n, 2 * n), np.arange(n)] = 1

    def apply(self, action, qubits):
        if len(qubits) == 1:
            a = qubits[0]
            v = self.x[:, a] | (self.z[:, a] << 1)
            image = action.bits[v]
            self.r ^= action.sign[v]
            self.x[:, a] = image & 1
            self.z[:, a] = (image >> 1) & 1
        else:
            a, b = qubits
            v = (self.x[:, a] | (self.z[:, a] << 1) |
                 (self.x[:, b] << 2) | (self.z[:, b] << 3))
            image = action.bits[v]
            self.r ^= action.sign[v]
            self.x[:, a] = image & 1
            self.z[:, a] = (image >> 1) & 1
            self.x[:, b] = (image >> 2) & 1
            self.z[:, b] = (image >> 3) & 1

    def apply_pauli(self, v, qubits):
        anti = np.zeros(2 * self.num_qubits, dtype=np.uint8)
        for slot, qubit in enumerate(qubits):
            if (v >> (2 * slot)) & 1:
                anti ^= self.z[:, qubit]
            if (v >> (2 * slot + 1)) & 1:
                anti ^= self.x[:, qubit]
        self.r ^= anti

    def _phase_exponent(self, x1, z1, x2, z2):
        x1 = x1.astype(np.int8)
        z1 = z1.astype(np.int8)
        x2 = x2.astype(np.int8)
        z2 = z2.astype(np.int8)
        g = np.where(
            (x1 == 1) & (z1 == 1), z2 - x2,
            np.where((x1 == 1) & (z1 == 0), z2 * (2 * x2 - 1),
                     np.where((x1 == 0) & (z1 == 1), x2 * (1 - 2 * z2),
                              0)))
        return int(g.sum())

    def _rowsum(self, h, i):
        total = (2 * int(self.r[h]) + 2 * int(self.r[i]) +
                 self._phase_exponent(self.x[i], self.z[i],
                                      self.x[h], self.z[h]))
        self.r[h] = (total % 4) // 2
        self.x[h] ^= self.x[i]
        self.z[h] ^= self.z[i]

    def _deterministic_outcome(self, a):
        n = self.num_qubits
        sx = np.zeros(n, dtype=np.uint8)
        sz = np.zeros(n, dtype=np.uint8)
        total = 0
        for i in np.nonzero(self.x[:n, a])[0]:
            total += (2 * int(self.r[i + n]) +
                      self._phase_exponent(self.x[i + n], self.z[i + n],
                                           sx, sz))
            sx ^= self.x[i + n]
            sz ^= self.z[i + n]
        return (total % 4) // 2

    def probability_one(self, a):
        if self.x[self.num_qubits:, a].any():
            return 0.5
        return float(self._deterministic_outcome(a))

    def collapse(self, a, result):
        n = self.num_qubits
        anticommuting = np.nonzero(self.x[n:, a])[0]
        if anticommuting.size == 0:
            assert self._deterministic_outcome(a) == result
            return
        p = int(anticommuting[0]) + n
        for h in np.nonzero(self.x[:, a])[0]:
            if h != p:
                self._rowsum(int(h), p)
        self.x[p - n] = self.x[p]
        self.z[p - n] = self.z[p]
        self.r[p - n] = self.r[p]
        self.x[p] = 0
        self.z[p] = 0
        self.z[p, a] = 1
        self.r[p] = result

    def measure(self, a, rng):
        p_one = self.probability_one(a)
        if p_one == 0.5:
            result = 1 if rng.random() < 0.5 else 0
        else:
            result = int(p_one)
        self.collapse(a, result)
        return result


def _assert_same_state(packed: StabilizerTableau,
                       boolean: BooleanTableau) -> None:
    """Word-level equality: the packed tableau's canonical unpacked
    image must match the boolean reference bit for bit — state AND
    phase rows, destabilizers included."""
    np.testing.assert_array_equal(packed.x_bits(), boolean.x)
    np.testing.assert_array_equal(packed.z_bits(), boolean.z)
    np.testing.assert_array_equal(packed.r_bits(), boolean.r)


try:
    from hypothesis import given, settings, strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:          # pragma: no cover - baked into the image
    HAVE_HYPOTHESIS = False


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis missing")
class TestPackedVsBooleanProperty:
    """Property tier: the bit-packed tableau is *exactly* the boolean
    tableau under random Clifford sequences, Pauli injections and
    measurements — same packed-word state, same phases, same RNG
    consumption, same outcomes."""

    @staticmethod
    def _op_strategy():
        return st.one_of(
            st.tuples(st.just("1q"),
                      st.sampled_from(CLIFFORD_1Q),
                      st.integers(0, 63)),
            st.tuples(st.just("2q"),
                      st.sampled_from(CLIFFORD_2Q),
                      st.integers(0, 63), st.integers(0, 63)),
            st.tuples(st.just("pauli"),
                      st.integers(1, 3), st.integers(0, 63)),
            st.tuples(st.just("measure"), st.integers(0, 63)))

    @given(num_qubits=st.integers(1, 6),
           seed=st.integers(0, 2 ** 31),
           ops=st.lists(_op_strategy(), min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_random_sequences_equal(self, num_qubits, seed, ops):
        packed = StabilizerTableau(num_qubits)
        boolean = BooleanTableau(num_qubits)
        rng_packed = np.random.default_rng(seed)
        rng_boolean = np.random.default_rng(seed)
        for op in ops:
            if op[0] == "1q":
                _, name, raw = op
                targets = (raw % num_qubits,)
                action = cached_clifford_action(
                    gates.STANDARD_GATES[name])
                packed.apply(action, targets)
                boolean.apply(action, targets)
            elif op[0] == "2q":
                if num_qubits < 2:
                    continue
                _, name, raw_a, raw_b = op
                a = raw_a % num_qubits
                b = raw_b % num_qubits
                if a == b:
                    b = (a + 1) % num_qubits
                action = cached_clifford_action(
                    gates.STANDARD_GATES[name])
                packed.apply(action, (a, b))
                boolean.apply(action, (a, b))
            elif op[0] == "pauli":
                _, v, raw = op
                packed.apply_pauli(v, (raw % num_qubits,))
                boolean.apply_pauli(v, (raw % num_qubits,))
            else:
                _, raw = op
                qubit = raw % num_qubits
                assert packed.probability_one(qubit) == \
                    boolean.probability_one(qubit)
                assert packed.measure(qubit, rng_packed) == \
                    boolean.measure(qubit, rng_boolean)
            _assert_same_state(packed, boolean)
        # Identical RNG consumption: the packed tableau must draw
        # exactly the draws the boolean one did, nothing more.
        assert rng_packed.random() == rng_boolean.random()

    @given(num_qubits=st.integers(65, 80),
           seed=st.integers(0, 2 ** 31))
    @settings(max_examples=5, deadline=None)
    def test_multiword_columns(self, num_qubits, seed):
        """Past 64 qubits a column spans multiple uint64 words; the
        packed arithmetic must stay exact across word boundaries."""
        rng = np.random.default_rng(seed)
        packed = StabilizerTableau(num_qubits)
        boolean = BooleanTableau(num_qubits)
        h = cached_clifford_action(gates.STANDARD_GATES["H"])
        cz = cached_clifford_action(gates.STANDARD_GATES["CZ"])
        for _ in range(30):
            a = int(rng.integers(num_qubits))
            b = int(rng.integers(num_qubits - 1))
            b = b if b != a else num_qubits - 1
            packed.apply(h, (a,))
            boolean.apply(h, (a,))
            packed.apply(cz, (a, b))
            boolean.apply(cz, (a, b))
        rng_packed = np.random.default_rng(seed + 1)
        rng_boolean = np.random.default_rng(seed + 1)
        for qubit in range(0, num_qubits, 7):
            assert packed.measure(qubit, rng_packed) == \
                boolean.measure(qubit, rng_boolean)
        _assert_same_state(packed, boolean)


class TestDigestStability:
    """Regression: the digest-of-state contract survived the
    bit-packed refactor."""

    def test_same_generators_same_digest(self):
        """The digest is the pre-refactor hash of the canonical
        (2n, n) uint8 images — same generators must yield the same
        digest regardless of the word packing underneath."""
        backend = StabilizerBackend(3)
        backend.apply_gate("H", gates.STANDARD_GATES["H"], (0,))
        backend.apply_gate("CZ", gates.STANDARD_GATES["CZ"], (0, 2))
        snapshot = backend.snapshot()
        digest = backend.state_digest(snapshot)
        # The pre-refactor formula, evaluated on the boolean reference
        # driven through the identical sequence.
        boolean = BooleanTableau(3)
        boolean.apply(cached_clifford_action(
            gates.STANDARD_GATES["H"]), (0,))
        boolean.apply(cached_clifford_action(
            gates.STANDARD_GATES["CZ"]), (0, 2))
        expected = hash((boolean.x.tobytes(), boolean.z.tobytes(),
                         boolean.r.tobytes()))
        assert digest == expected

    def test_digest_insensitive_to_copy(self):
        backend = StabilizerBackend(4)
        backend.apply_gate("X90", gates.STANDARD_GATES["X90"], (1,))
        first = backend.snapshot()
        second = backend.snapshot()
        assert backend.state_digest(first) == \
            backend.state_digest(second)

    def test_digest_detects_any_packed_bit_flip(self):
        backend = StabilizerBackend(2)
        backend.apply_gate("H", gates.STANDARD_GATES["H"], (0,))
        snapshot = backend.snapshot()
        digest = backend.state_digest(snapshot)
        rng = np.random.default_rng(5)
        backend.corrupt_snapshot(snapshot, rng)
        assert backend.state_digest(snapshot) != digest
