"""Design-space exploration — regenerate Fig. 7's analysis.

Builds the three DSE benchmarks (randomized benchmarking, Ising model,
Grover square root), sweeps the ten architecture configurations over
VLIW widths 1-4, and prints the instruction-count table plus the
derived quantities the paper quotes, including the issue-rate analysis
that motivates the whole design.

Run: ``python examples/design_space_exploration.py``
"""

from repro.experiments.dse import (
    build_benchmarks,
    config9_effective_ops,
    format_dse_table,
    issue_rate_analysis,
    run_dse,
)
from repro.workloads.grover_sqrt import grover_sqrt_circuit
from repro.workloads.ising import ising_circuit


def main() -> None:
    im = ising_circuit()
    sr = grover_sqrt_circuit()
    print("workload statistics (paper: IM < 1% 2q, SR ~39% 2q):")
    print(f"  IM: {im.gate_count()} gates, "
          f"{im.two_qubit_fraction() * 100:.2f}% two-qubit")
    print(f"  SR: {sr.gate_count()} gates, "
          f"{sr.two_qubit_fraction() * 100:.2f}% two-qubit")

    benchmarks = build_benchmarks(rb_cliffords=512)
    table = run_dse(benchmarks)
    print()
    print(format_dse_table(table))

    print("\nheadline reductions:")
    print(f"  RB, w=1 -> w=4 (config 1):  "
          f"{table.reduction_vs_baseline('RB', 1, 4) * 100:.1f}% "
          f"(paper: up to 62%)")
    print(f"  RB, SOMQ at w=2:            "
          f"{table.reduction_between('RB', 5, 2, 9, 2) * 100:.1f}% "
          f"(paper: max 42%)")
    print(f"  IM, SOMQ at w=1:            "
          f"{table.reduction_between('IM', 5, 1, 9, 1) * 100:.1f}% "
          f"(paper: ~24%)")

    print("\neffective ops per bundle, config 9 (the chosen design):")
    for name, row in config9_effective_ops(benchmarks).items():
        print(f"  {name}: " + ", ".join(
            f"w={w}: {value:.3f}" for w, value in sorted(row.items())))

    report = issue_rate_analysis(benchmarks)
    print("\nissue-rate analysis (Rreq / Rallowed; > 1 = unsustainable):")
    for name in ("RB", "IM", "SR"):
        print(f"  {name}: QuMIS {report.quimis[name]:.2f}  ->  "
              f"eQASM config 9 {report.eqasm[name]:.2f}")


if __name__ == "__main__":
    main()
