"""Comprehensive feedback control — measurement-dependent branching.

Runs the Fig. 5 program: measure one qubit, fetch the result with
``FMR`` (which stalls until the result is valid — the C_i counter
mechanism), compare, and branch to apply either X or Y on the other
qubit.  Then repeats the paper's verification trick: the measurement
unit is programmed with alternating mock results, and the applied
operations must alternate X, Y, X, Y, ...

Finally it measures both feedback latencies on the simulated
microarchitecture (paper: ~92 ns fast conditional, ~316 ns CFC).

Run: ``python examples/cfc_feedback.py``
"""

from repro.experiments.cfc import (
    FIG5_PROGRAM,
    format_latency_report,
    measure_feedback_latencies,
    run_cfc_verification,
)


def main() -> None:
    print("Fig. 5 program:")
    print(FIG5_PROGRAM)

    result = run_cfc_verification(rounds=10)
    print("mock results 0,1,0,1,... produced operations:",
          " ".join(result.applied_operations))
    print("strict X/Y alternation:", result.alternates)

    print()
    print(format_latency_report(measure_feedback_latencies()))


if __name__ == "__main__":
    main()
