"""Distance-2 surface-code error detection on the seven-qubit chip.

The target chip of the paper (Fig. 6) is one distance-2 surface-code
patch: four data qubits on the corners, three ancillas in the middle.
This script runs repeated syndrome extraction through the full stack,
injects a physical X error on a data qubit mid-experiment, and shows
the Z-stabilizers catching it — the paper's motivating application for
SOMQ ("well-patterned error syndrome measurements ... presenting high
parallelism").

Run: ``python examples/surface_code_detection.py``
"""

from repro.experiments.runner import ExperimentSetup
from repro.core import seven_qubit_instantiation
from repro.experiments.surface_code import (
    format_surface_code_report,
    looped_surface_code_program,
    run_looped_surface_code_experiment,
    run_surface_code_experiment,
)
from repro.workloads.surface_code import surface_code_circuit


def show_compiled_round() -> None:
    setup = ExperimentSetup.create(isa=seven_qubit_instantiation(),
                                   seed=0)
    assembled = setup.compile_circuit(surface_code_circuit(rounds=1),
                                      initialize_cycles=100)
    print("one compiled syndrome round "
          "(note the SOMQ masks covering both Z-ancillas):")
    print(assembled.program.to_assembly())


def show_looped_binary() -> None:
    """The instruction-memory-friendly form: one round in a counted
    SUB/CMP/BR loop instead of compile-time unrolling — the dataflow
    pass resolves the trip count, so it still rides shot replay."""
    print("\nthe same rounds as a counted-loop binary:")
    print(looped_surface_code_program(rounds=4))
    result = run_looped_surface_code_experiment(rounds=4, shots=40)
    stats = result.engine_stats
    print(f"looped run: engine={stats.engine}, "
          f"bounded loops={stats.bounded_loops}, "
          f"{stats.replay_shots}/{stats.shots_total} shots replayed, "
          f"clean-round detection fraction="
          f"{result.detection_fraction(0):.2f}")


def main() -> None:
    show_compiled_round()
    show_looped_binary()
    error = ("X", 5)
    clean = run_surface_code_experiment(rounds=3, shots=40)
    faulty = run_surface_code_experiment(rounds=3, error=error,
                                         error_after_round=0, shots=40)
    print(format_surface_code_report(clean, faulty, error))
    print("\nround 0 precedes the fault; rounds 1+ detect it on "
          "Z-check (2) = Z0 Z5, exactly the stabilizer X_5 anticommutes "
          "with.")


if __name__ == "__main__":
    main()
