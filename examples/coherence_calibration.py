"""T1 and Ramsey coherence sweeps — the Section 2.2 timing requirement.

The T1 experiment is the paper's canonical example of why eQASM needs
explicit timing: the experiment is literally a swept QWAIT between a
pulse and a measurement.  This script runs the sweep on the machine and
fits back the plant's configured T1/T2 — the control stack measuring
its own qubits' coherence.

Run: ``python examples/coherence_calibration.py``
"""

from repro.experiments.coherence import (
    format_coherence_report,
    run_ramsey_experiment,
    run_t1_experiment,
)
from repro.workloads.coherence import t1_program


def main() -> None:
    print("one T1 point is just eQASM with a swept QWAIT:")
    print(t1_program(qubit=2, wait_cycles=512).to_assembly())

    t1 = run_t1_experiment(max_wait_cycles=8192, points=9)
    print(format_coherence_report("T1", t1))
    print()
    ramsey = run_ramsey_experiment(max_wait_cycles=4096, points=9)
    print(format_coherence_report("T2 (Ramsey)", ramsey))


if __name__ == "__main__":
    main()
