"""Two-qubit AllXY — the Fig. 11 calibration experiment.

Compiles all 42 interleaved gate-pair combinations through the full
toolflow (circuit IR -> ASAP schedule -> eQASM codegen with SOMQ and
VLIW -> binary -> QuMA v2 -> noisy plant), corrects the results for
readout error and prints the staircase against the ideal pattern.

Run: ``python examples/allxy_experiment.py``
"""

from repro.experiments.allxy import format_allxy_table, \
    run_allxy_experiment
from repro.experiments.runner import ExperimentSetup
from repro.workloads.allxy import allxy_two_qubit_circuit


def show_compiled_step() -> None:
    """Print the compiled eQASM of one AllXY step (cf. Fig. 3)."""
    setup = ExperimentSetup.create(seed=0)
    circuit = allxy_two_qubit_circuit(29)  # X90 on q0, X on q2 step
    assembled = setup.compile_circuit(circuit)
    print("compiled eQASM for gate-pair combination 29 "
          "(compare with the paper's Fig. 3):")
    print(assembled.program.to_assembly())


def main() -> None:
    show_compiled_step()
    print("running all 42 combinations (a minute or two)...")
    result = run_allxy_experiment(shots=150, seed=7)
    print(format_allxy_table(result))


if __name__ == "__main__":
    main()
