"""Quickstart: assemble and run a hand-written eQASM program.

Demonstrates the minimal full-stack loop of the paper's toolflow:

1. write eQASM assembly (the interface the paper defines);
2. assemble it into 32-bit binary words (the Fig. 8 instantiation);
3. execute the binary on the QuMA v2 microarchitecture driving the
   noisy two-qubit plant;
4. read the measurement results back.

Run: ``python examples/quickstart.py``
"""

from repro import ExperimentSetup

PROGRAM = """
# Prepare |+> on qubit 2 and measure it 200 us after initialization.
    SMIS S2, {2}        # target register: qubit 2
    QWAIT 10000         # initialize by idling (200 us at 20 ns/cycle)
    X90 S2              # pi/2 rotation: equal superposition
    MEASZ S2            # z-basis measurement
    QWAIT 50            # keep the timeline open for the 300 ns readout
    STOP
"""


def main() -> None:
    setup = ExperimentSetup.create(seed=42)
    assembled = setup.assemble_text(PROGRAM)

    print("binary image:")
    for word, instruction in zip(assembled.words,
                                 assembled.program.instructions):
        print(f"  {word:#010x}  {instruction.to_assembly()}")

    shots = 500
    traces = setup.run(assembled, shots)
    excited = sum(trace.last_result(2) for trace in traces) / shots
    print(f"\nP(|1>) over {shots} shots: {excited:.3f} "
          f"(ideal 0.5; readout error shifts it slightly)")

    trace = traces[-1]
    print(f"instructions executed per shot: {trace.instructions_executed}")
    print(f"first trigger at {trace.triggers[0].trigger_ns:.0f} ns, "
          f"result arrived at {trace.results[0].arrival_ns:.0f} ns")


if __name__ == "__main__":
    main()
