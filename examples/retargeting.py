"""Retargeting an eQASM program across platforms.

The paper's conclusion: "by removing the timing information in the
eQASM description, the quantum semantics of the program can be kept and
further converted into another executable format targeting another
hardware platform."  This script takes the Fig. 3 AllXY routine written
for the two-qubit chip, strips its timing into a hardware-independent
circuit, and recompiles it for the seven-qubit surface-code chip (on
different physical qubits), then runs both binaries and compares the
outcomes.

Run: ``python examples/retargeting.py``
"""

import numpy as np

from repro.core import (
    Assembler,
    Program,
    extract_semantics,
    retarget_program,
    seven_qubit_instantiation,
    two_qubit_instantiation,
)
from repro.quantum import NoiseModel, QuantumPlant
from repro.uarch import QuMAv2

FIG3 = """
SMIS S0, {0}
SMIS S2, {2}
SMIS S7, {0, 2}
QWAIT 10000
0, Y S7
1, X90 S0 | X S2
1, MEASZ S7
QWAIT 50
"""


def main() -> None:
    source_isa = two_qubit_instantiation()
    target_isa = seven_qubit_instantiation()
    program = Program.from_text(FIG3)

    circuit = extract_semantics(program, source_isa)
    print("timing-stripped semantics (hardware independent):")
    for op in circuit:
        print(f"  {op}")

    ported = retarget_program(program, source_isa, target_isa,
                              qubit_map={0: 1, 2: 4},
                              initialize_cycles=10000)
    print("\nrecompiled for the surface-7 chip (qubits 1 and 4):")
    print(ported.to_assembly())

    plant = QuantumPlant(target_isa.topology, noise=NoiseModel(),
                         rng=np.random.default_rng(6))
    machine = QuMAv2(target_isa, plant)
    machine.load(Assembler(target_isa).assemble_program(ported))
    shots = 300
    ones = {1: 0, 4: 0}
    for _ in range(shots):
        trace = machine.run_shot()
        for qubit in (1, 4):
            ones[qubit] += trace.last_result(qubit)
    print(f"qubit 1 (Y then X90): P(1) = {ones[1] / shots:.2f} "
          f"(ideal 0.5)")
    print(f"qubit 4 (Y then X):   P(1) = {ones[4] / shots:.2f} "
          f"(ideal 0.0 + readout error)")


if __name__ == "__main__":
    main()
