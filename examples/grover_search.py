"""Two-qubit Grover's search with state tomography (Section 5).

Runs the search for every marked state |00>..|11> on the simulated
setup, reconstructs the output state by nine-setting Pauli tomography
with maximum-likelihood estimation, and reports the readout-corrected
algorithmic fidelity (paper: 85.6 %, limited by the CZ gate).

Run: ``python examples/grover_search.py``
"""

from repro.experiments.grover import (
    format_grover_report,
    run_grover_experiment,
)
from repro.experiments.runner import ExperimentSetup, outcome_counts
from repro.workloads.grover2q import grover2q_circuit


def quick_histogram() -> None:
    """Direct measurement histogram for one oracle (no tomography)."""
    setup = ExperimentSetup.create(seed=1)
    circuit = grover2q_circuit(marked_state=2, include_measurement=True)
    traces = setup.run_circuit(circuit, shots=400)
    counts = outcome_counts(traces, 0, 2)
    print("oracle |10>: measurement histogram over 400 shots")
    for outcome in range(4):
        bar = "#" * (counts.get(outcome, 0) // 8)
        print(f"  |{outcome:02b}>: {counts.get(outcome, 0):4d} {bar}")


def main() -> None:
    quick_histogram()
    print("\nfull tomography for all four oracles (takes a while)...")
    result = run_grover_experiment(shots=150, seed=17)
    print(format_grover_report(result))


if __name__ == "__main__":
    main()
