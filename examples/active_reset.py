"""Active qubit reset — the paper's fast-conditional-execution demo.

Runs the exact Fig. 4 program: prepare a superposition, measure, and
apply ``C_X`` (an X gate conditioned on the last measurement result
being |1>) to steer the qubit back to |0>.  With the calibrated noise
model the reset lands at ~82.7 %, readout-limited, like the paper;
with a noiseless model it is perfect.

Run: ``python examples/active_reset.py``
"""

from repro import NoiseModel
from repro.experiments.reset import (
    FIG4_PROGRAM,
    format_reset_report,
    run_active_reset_experiment,
)


def main() -> None:
    print("Fig. 4 program:")
    print(FIG4_PROGRAM)

    print("--- calibrated noise model ---")
    noisy = run_active_reset_experiment(shots=2000, seed=5)
    print(format_reset_report(noisy))

    print("\n--- noiseless ablation (shows the readout limit) ---")
    ideal = run_active_reset_experiment(shots=300, seed=5,
                                        noise=NoiseModel.noiseless())
    print(format_reset_report(ideal))


if __name__ == "__main__":
    main()
