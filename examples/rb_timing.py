"""Randomized benchmarking vs gate interval — the Fig. 12 experiment.

Shows why eQASM exposes timing at the architecture level: compiling the
same RB sequences with different intervals between gate starting points
changes the error per gate by a factor ~7 (decoherence accumulates
during idle time).

Run: ``python examples/rb_timing.py``
"""

from repro.experiments.rb_timing import (
    format_rb_table,
    run_rb_timing_experiment,
)
from repro.experiments.runner import ExperimentSetup
from repro.workloads.rb import rb_sequence_circuit

import numpy as np


def show_compiled_interval() -> None:
    """Show how the interval appears in the compiled eQASM."""
    setup = ExperimentSetup.create(seed=0)
    rng = np.random.default_rng(0)
    circuit = rb_sequence_circuit(2, rng, include_measurement=False)
    assembled = setup.compile_circuit(circuit, interval_cycles=16,
                                      initialize_cycles=100,
                                      final_wait_cycles=0)
    print("two Cliffords at a 320 ns interval compile to:")
    print(assembled.program.to_assembly())


def main() -> None:
    show_compiled_interval()
    print("sweeping intervals (a minute)...")
    result = run_rb_timing_experiment(max_length=1000, num_lengths=7,
                                      num_sequences=2, seed=11)
    print(format_rb_table(result))


if __name__ == "__main__":
    main()
