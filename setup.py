"""Legacy setup shim.

The modern build path (PEP 660 editable install) requires the ``wheel``
package; this shim keeps ``python setup.py develop`` and offline
``pip install -e .`` working in environments without it.
"""

from setuptools import setup

setup()
