"""E1 — Fig. 7: instruction counts for configs 1-10 x VLIW widths.

Regenerates the full design-space exploration over the three
benchmarks (RB, IM, SR) and checks the paper's qualitative claims:

* w 1 -> 4 reduces RB instructions by up to 62 %;
* Config 2 (wait-in-slot) helps the sequential SR benchmark most;
* most waits fit a 3-bit PI (Config 5 ~ Config 6);
* SOMQ gives RB up to ~42 %, IM ~24 % (w = 1), SR only a few %.

Run: ``pytest benchmarks/bench_fig7_dse.py --benchmark-only -s``
"""

import pytest

from repro.experiments.dse import (
    build_benchmarks,
    format_dse_table,
    run_dse,
)

#: Cliffords per qubit for the RB workload.  The paper uses 4096; the
#: bench uses 1024 by default (the counts scale linearly, the
#: reductions are size-independent beyond ~100).
RB_CLIFFORDS = 1024


@pytest.fixture(scope="module")
def benchmarks():
    return build_benchmarks(rb_cliffords=RB_CLIFFORDS)


def test_fig7_instruction_counts(benchmark, benchmarks):
    table = benchmark.pedantic(run_dse, args=(benchmarks,),
                               rounds=1, iterations=1)
    print()
    print(format_dse_table(table))
    print()
    rows = [
        ("RB: w=4 vs baseline", table.reduction_vs_baseline("RB", 1, 4),
         "62%"),
        ("RB: SOMQ at w=2 (cfg 5 -> 9)",
         table.reduction_between("RB", 5, 2, 9, 2), "max 42%"),
        ("IM: SOMQ at w=1 (cfg 5 -> 9)",
         table.reduction_between("IM", 5, 1, 9, 1), "~24%"),
        ("SR: SOMQ at w=1 (cfg 5 -> 9)",
         table.reduction_between("SR", 5, 1, 9, 1), "<= 4%"),
        ("SR: cfg 2 vs cfg 1 at w=2",
         table.reduction_between("SR", 1, 2, 2, 2), "43-50%"),
        ("IM: cfg 3 vs cfg 1 at w=1",
         table.reduction_between("IM", 1, 1, 3, 1), "28-44%"),
    ]
    print("claim                                measured   paper")
    for label, value, paper in rows:
        print(f"{label:36s} {value * 100:6.1f}%    {paper}")
    # Shape assertions (who wins, roughly by how much).
    assert table.reduction_vs_baseline("RB", 1, 4) == pytest.approx(
        0.62, abs=0.05)
    assert table.reduction_between("RB", 5, 2, 9, 2) == pytest.approx(
        0.42, abs=0.06)
    assert table.reduction_between("IM", 5, 1, 9, 1) == pytest.approx(
        0.24, abs=0.07)
    assert table.reduction_between("SR", 5, 1, 9, 1) < 0.12
    assert table.reduction_between("SR", 1, 2, 2, 2) > \
        table.reduction_between("RB", 1, 2, 2, 2)


def test_fig7_pi_width_saturates_at_3_bits(benchmark, benchmarks):
    """Config 5 (wPI=3) captures nearly all waits: Config 6 adds little."""
    table = benchmark.pedantic(run_dse, args=(benchmarks,),
                               rounds=1, iterations=1)
    for name in ("RB", "IM", "SR"):
        c5 = table.counts[name][(5, 2)]
        c6 = table.counts[name][(6, 2)]
        gain = 1.0 - c6 / c5
        print(f"{name}: config 5 -> 6 at w=2 gains {gain * 100:.2f}% "
              f"(paper: marginal)")
        assert gain < 0.05
