"""E12 — Sections 1.2 / 4.3: the quantum-operation issue-rate problem.

Two views:

* **static** — Rreq/Rallowed for the three benchmarks under the QuMIS
  encoding vs eQASM Config 9 (w = 2): the density mechanisms cut the
  required issue rate by ~3x;
* **dynamic** — the same dense gate stream executed on the machine:
  QuMIS-style code (one op per instruction + explicit waits) makes the
  timing controller slip, eQASM's SOMQ encoding runs on time.  Also
  ablates the timing-queue depth (queue-based timing control is what
  lets the reserve phase run ahead at all).
"""

import numpy as np
import pytest

from repro.core import Assembler, seven_qubit_instantiation
from repro.experiments.dse import build_benchmarks, issue_rate_analysis
from repro.quantum import NoiseModel, QuantumPlant
from repro.uarch import QuMAv2, UarchConfig, slip_config


def test_static_issue_rate(benchmark):
    benchmarks = build_benchmarks(rb_cliffords=512)
    report = benchmark.pedantic(issue_rate_analysis, args=(benchmarks,),
                                rounds=1, iterations=1)
    print()
    print("benchmark   Rreq/Rallowed QuMIS   Rreq/Rallowed eQASM cfg9 w2")
    for name in ("RB", "IM", "SR"):
        print(f"{name:9s}   {report.quimis[name]:10.2f}           "
              f"{report.eqasm[name]:10.2f}")
    for name in ("RB", "IM", "SR"):
        assert report.eqasm[name] < report.quimis[name]
    # The paper observed QuMIS failing even at 2 qubits; at 7 the
    # required rate is several times the budget.
    assert report.quimis["RB"] > 2.0
    assert report.eqasm["SR"] < 1.0


def _machine(config):
    isa = seven_qubit_instantiation()
    plant = QuantumPlant(isa.topology, noise=NoiseModel.noiseless(),
                         rng=np.random.default_rng(0))
    return isa, QuMAv2(isa, plant, config=config)


QUMIS_STYLE = "\n".join(
    ["SMIS S0, {0}", "SMIS S1, {1}", "SMIS S2, {2}", "SMIS S3, {3}"]
    + ["X S0", "0, Y S1", "0, X S2", "0, Y S3",
       "1, Y S0", "0, X S1", "0, Y S2", "0, X S3"] * 6
    + ["STOP"])

SOMQ_STYLE = "\n".join(
    ["SMIS S7, {0, 1, 2, 3}"]
    + ["X S7", "Y S7"] * 6
    + ["STOP"])


def test_dynamic_slip_quimis_vs_somq(benchmark):
    def run_both():
        isa, machine = _machine(slip_config())
        assembler = Assembler(isa)
        machine.load(assembler.assemble_text(QUMIS_STYLE))
        quimis_trace = machine.run_shot()
        machine.load(assembler.assemble_text(SOMQ_STYLE))
        somq_trace = machine.run_shot()
        return quimis_trace, somq_trace

    quimis_trace, somq_trace = benchmark.pedantic(run_both, rounds=1,
                                                  iterations=1)
    print(f"\nper-qubit encoding: {len(quimis_trace.slips)} slipped "
          f"points, max slip {quimis_trace.max_slip_ns():.0f} ns")
    print(f"SOMQ encoding:      {len(somq_trace.slips)} slipped "
          f"points, max slip {somq_trace.max_slip_ns():.0f} ns")
    assert quimis_trace.max_slip_ns() > 0
    assert somq_trace.slips == []


def test_timing_queue_depth_ablation(benchmark):
    """A deep timing queue lets the reserve phase run ahead through
    bursty regions; depth 1 serialises reserve and trigger."""

    bursty = "\n".join(
        ["SMIS S7, {0, 1, 2, 3}", "SMIS S0, {0}", "SMIS S1, {1}",
         "SMIS S2, {2}", "SMIS S3, {3}",
         # A slack region (wait) followed by a dense burst.
         "QWAIT 40"]
        + ["X S0", "0, X S1", "0, X S2", "0, X S3"] * 3
        + ["STOP"])

    def run_depths():
        results = {}
        for depth in (1, 4, 1024):
            isa, machine = _machine(slip_config(UarchConfig(
                timing_queue_depth=depth, late_policy="slip")))
            machine.load(Assembler(isa).assemble_text(bursty))
            trace = machine.run_shot()
            results[depth] = trace.max_slip_ns()
        return results

    results = benchmark.pedantic(run_depths, rounds=1, iterations=1)
    print("\ntiming-queue depth -> max slip:",
          {d: f"{s:.0f} ns" for d, s in results.items()})
    # Deeper queues never hurt; the deep queue absorbs the burst best.
    assert results[1024] <= results[4] <= results[1]
