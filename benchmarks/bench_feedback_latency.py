"""E7 — Section 5: feedback latencies of the two mechanisms.

Paper: "~92 ns and ~316 ns" from result-into-controller to digital
output, for fast conditional execution and CFC respectively.  The
reproduction scans probe programs for the shortest correct schedule on
the simulated microarchitecture and reports the minimal latencies.
"""

import pytest

from repro.experiments.cfc import (
    PAPER_CFC_LATENCY_NS,
    PAPER_FAST_CONDITIONAL_LATENCY_NS,
    format_latency_report,
    measure_feedback_latencies,
)


def test_feedback_latencies(benchmark):
    result = benchmark.pedantic(measure_feedback_latencies,
                                rounds=1, iterations=1)
    print()
    print(format_latency_report(result))
    assert result.fast_conditional_ns == pytest.approx(
        PAPER_FAST_CONDITIONAL_LATENCY_NS, abs=25)
    assert result.cfc_ns == pytest.approx(PAPER_CFC_LATENCY_NS, abs=60)
    # The architectural trade-off: CFC's flexibility costs ~3.4x.
    ratio = result.cfc_ns / result.fast_conditional_ns
    print(f"  CFC / fast-conditional ratio: {ratio:.2f} (paper: ~3.4)")
    assert 2.5 < ratio < 4.5
