"""E4 — Fig. 12: single-qubit RB error per gate vs gate interval.

Paper: error per gate falls from 0.71 % at a 320 ns interval to 0.10 %
at 20 ns — a factor ~7 — demonstrating why eQASM exposes timing at the
architecture level.  The reproduction compiles every RB sequence at the
requested interval, executes the binary on the microarchitecture, and
fits the exponential survival decay.
"""

import pytest

from repro.experiments.rb_timing import (
    PAPER_ERROR_PER_GATE,
    format_rb_table,
    run_rb_timing_experiment,
)


def test_fig12_rb_error_vs_interval(benchmark):
    result = benchmark.pedantic(
        run_rb_timing_experiment,
        kwargs={"max_length": 1000, "num_lengths": 7,
                "num_sequences": 2, "seed": 11},
        rounds=1, iterations=1)
    print()
    print(format_rb_table(result))
    errors = result.error_by_interval()
    # Monotone in the interval.
    ordered = sorted(errors)
    values = [errors[i] for i in ordered]
    assert all(a <= b * 1.15 for a, b in zip(values, values[1:]))
    # Each point within a loose band of the paper's measurement.
    for interval, paper_value in PAPER_ERROR_PER_GATE.items():
        assert errors[interval] == pytest.approx(paper_value,
                                                 rel=0.35, abs=4e-4), \
            f"interval {interval} ns"
    # The headline factor ~7.
    assert result.improvement_factor() == pytest.approx(7.0, rel=0.3)
