"""Extension bench — the T1 experiment (Section 2.2 requirement).

Not a numbered paper figure, but the requirement that shaped the ISA:
"some experiments such as measuring the relaxation time of qubits (T1
experiment)" must be expressible.  The bench runs the swept-QWAIT T1
and Ramsey programs through the full stack and checks the fitted
constants recover what the plant was configured with — closing the
calibration loop end to end.
"""

import pytest

from repro.experiments.coherence import (
    format_coherence_report,
    run_ramsey_experiment,
    run_t1_experiment,
)


def test_t1_experiment(benchmark):
    result = benchmark.pedantic(
        run_t1_experiment,
        kwargs={"max_wait_cycles": 8192, "points": 9},
        rounds=1, iterations=1)
    print()
    print(format_coherence_report("T1", result))
    assert result.fitted_constant_ns == pytest.approx(
        result.configured_constant_ns, rel=0.05)


def test_ramsey_experiment(benchmark):
    result = benchmark.pedantic(
        run_ramsey_experiment,
        kwargs={"max_wait_cycles": 4096, "points": 9},
        rounds=1, iterations=1)
    print()
    print(format_coherence_report("T2 (Ramsey)", result))
    assert result.fitted_constant_ns == pytest.approx(
        result.configured_constant_ns, rel=0.15)
