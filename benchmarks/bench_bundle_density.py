"""E2 — Section 4.2 in-text table: effective quantum operations per
bundle for Config 9 at w = 2, 3, 4.

Paper values: RB 1.795 / 2.296 / 3.144, IM 1.485 / 1.622 / 1.623,
SR 1.118 / 1.147 / 1.147.  The reproduction's RB runs denser (our
seven per-qubit Clifford streams stay cycle-aligned; see
EXPERIMENTS.md), so the assertions check the orderings the paper
derives from these numbers, not the absolute values:

* density grows with parallelism: RB > IM > SR at every width;
* SR's density is nearly flat in w ("with the existence of SOMQ,
  w > 2 is not highly required for many quantum applications");
* RB (extreme parallelism) keeps gaining from larger w.
"""

import pytest

from repro.experiments.dse import (
    PAPER_CLAIMS,
    build_benchmarks,
    config9_effective_ops,
)


@pytest.fixture(scope="module")
def benchmarks():
    return build_benchmarks(rb_cliffords=1024)


def test_effective_ops_per_bundle(benchmark, benchmarks):
    eff = benchmark.pedantic(config9_effective_ops, args=(benchmarks,),
                             rounds=1, iterations=1)
    print()
    print("benchmark   w=2      w=3      w=4     (paper w=2/3/4)")
    for name in ("RB", "IM", "SR"):
        paper = [PAPER_CLAIMS[f"config9_w{w}_eff_ops"][name]
                 for w in (2, 3, 4)]
        print(f"{name:9s}  {eff[name][2]:.3f}    {eff[name][3]:.3f}    "
              f"{eff[name][4]:.3f}    "
              f"({paper[0]:.3f}/{paper[1]:.3f}/{paper[2]:.3f})")
    # Orderings.
    for width in (2, 3, 4):
        assert eff["RB"][width] > eff["IM"][width] > eff["SR"][width]
    assert eff["RB"][4] > eff["RB"][3] > eff["RB"][2]
    # SR flat in w (within 5 %): w>2 not required for sequential code.
    assert eff["SR"][4] / eff["SR"][2] < 1.15
