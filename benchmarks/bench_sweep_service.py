"""E16 — crash-safe sweep serving: concurrent throughput and tail
latency of :class:`repro.serving.SweepService`.

Mixed workload traffic — a Rabi amplitude scan and a Ramsey-style
delay scan submitted back to back — served over the supervised worker
pool, measured three ways:

* end-to-end sweep throughput (points/sec through submit -> journal ->
  stream) against a single-process inline baseline;
* per-point execution latency distribution (p50 / p99) as reported by
  the workers' own telemetry;
* chaos-recovery overhead: the same sweep with ``worker_crash`` +
  ``worker_hang`` faults armed, gated on the recovered distribution
  being bit-identical to the fault-free one.

Runs two ways:

* under pytest (``pytest benchmarks/bench_sweep_service.py``) as a
  regression gate on completion and chaos bit-identity;
* as a script (``python benchmarks/bench_sweep_service.py [--shots N]
  [--points N] [--workers N] [--check]
  [--output BENCH_sweep_service.json]``) — the recorded numbers live
  in ``BENCH_sweep_service.json`` at the repository root.
"""

import argparse
import json
import math
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # script mode without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.isa import two_qubit_instantiation
from repro.core.operations import (
    add_rabi_amplitude_operations,
    default_operation_set,
)
from repro.experiments.runner import ExperimentSetup
from repro.quantum.noise import NoiseModel
from repro.serving import (
    ServiceConfig,
    SweepService,
    SweepSpec,
    execute_point,
)
from repro.uarch.faults import FaultPlan, FaultSpec
from repro.workloads.rabi import rabi_step_circuit

MAX_STEPS = 16

#: Ramsey-style scan: two X90 pulses separated by a swept idle delay
#: (T2 dephasing makes the excited-state probability delay-dependent).
RAMSEY_TEMPLATE = """
SMIS S2, {2}
QWAIT 10000
X90 S2
QWAIT %d
X90 S2
MEASZ S2
QWAIT 50
STOP
"""


def build_setup() -> ExperimentSetup:
    operations = default_operation_set()
    add_rabi_amplitude_operations(operations, MAX_STEPS,
                                  max_angle=2.0 * math.pi)
    isa = two_qubit_instantiation(operations)
    return ExperimentSetup.create(isa=isa, noise=NoiseModel(), seed=0)


def build_rabi_program(setup, params):
    return setup.compile_circuit(
        rabi_step_circuit(params["step"], qubit=2))


def build_ramsey_program(setup, params):
    return setup.assemble_text(RAMSEY_TEMPLATE % params["delay"])


def make_specs(points: int, shots: int) -> list[SweepSpec]:
    """The mixed traffic: one compiled-circuit sweep, one hand-written
    assembly sweep, submitted back to back."""
    rabi = SweepSpec.from_params(
        name="bench-rabi", shots=shots, seed=101,
        params=[{"step": step} for step in range(points)],
        setup_factory=build_setup,
        program_factory=build_rabi_program)
    ramsey = SweepSpec.from_params(
        name="bench-ramsey", shots=shots, seed=202,
        params=[{"delay": 200 + 400 * step} for step in range(points)],
        setup_factory=build_setup,
        program_factory=build_ramsey_program)
    return [rabi, ramsey]


def service_config(workers: int, chaos: bool = False) -> ServiceConfig:
    supervision = (dict(heartbeat_timeout_s=1.0, point_deadline_s=1.0,
                        hang_sleep_s=30.0, max_restarts=16)
                   if chaos else {})
    return ServiceConfig(num_workers=workers, shard_size=2,
                         poll_interval_s=0.005, drain_timeout_s=10.0,
                         **supervision)


def run_benchmark(shots: int = 200, points: int = 8,
                  workers: int = 2) -> dict:
    specs = make_specs(points, shots)

    # Inline single-process baseline (also the bit-identity reference).
    setup = build_setup()
    start = time.perf_counter()
    expected = {
        spec.name: {index: execute_point(setup, spec,
                                         spec.point(index))[0]
                    for index in range(spec.num_points)}
        for spec in specs}
    inline_s = time.perf_counter() - start

    # Mixed traffic through the service.
    service = SweepService(service_config(workers))
    for spec in specs:
        service.submit(spec)
    start = time.perf_counter()
    results = list(service.serve())
    service_s = time.perf_counter() - start

    total_points = sum(spec.num_points for spec in specs)
    served = {spec.name: {} for spec in specs}
    for result in results:
        served[result.sweep][result.index] = result
    identical = all(
        {i: r.counts for i, r in served[spec.name].items()}
        == expected[spec.name]
        for spec in specs)
    # Per-point latency tail straight off the service's shared
    # fixed-bound histogram (repro.obs.Histogram) — the same numbers
    # ServiceStats.as_dict() reports, not a bench-local percentile.
    latency = service.stats_snapshot().point_latency

    # Chaos-recovery overhead on the Rabi sweep alone.
    rabi = specs[0]
    plan = FaultPlan([FaultSpec("worker_crash", shot=1),
                      FaultSpec("worker_hang", shot=points // 2),
                      FaultSpec("result_drop", shot=points - 1)])
    chaos_service = SweepService(service_config(workers, chaos=True),
                                 fault_plan=plan)
    start = time.perf_counter()
    chaos_result = chaos_service.run_sweep(rabi)
    chaos_s = time.perf_counter() - start
    chaos_identical = (chaos_result.counts_by_index()
                       == expected[rabi.name])
    chaos_stats = chaos_service.stats_snapshot()

    return {
        "benchmark": "bench_sweep_service",
        "description": "supervised sweep serving: mixed-traffic "
                       "throughput, point-latency tail, and "
                       "chaos-recovery overhead",
        "shots": shots,
        "points_per_sweep": points,
        "workers": workers,
        "mixed_traffic": {
            "total_points": total_points,
            "points_completed": len(results),
            "bit_identical_to_inline": identical,
            "inline_points_per_sec": round(total_points / inline_s, 2),
            "service_points_per_sec": round(
                total_points / service_s, 2),
            "service_vs_inline": round(inline_s / service_s, 2),
            "point_latency_count": latency.count,
            "point_latency_p50_ms": round(
                1e3 * latency.percentile(0.50), 2),
            "point_latency_p99_ms": round(
                1e3 * latency.percentile(0.99), 2),
            "point_latency_histogram": latency.as_dict(),
        },
        "chaos_recovery": {
            "bit_identical": chaos_identical,
            "faults_injected": list(chaos_stats.chaos_directives),
            "worker_restarts": chaos_stats.worker_restarts,
            "points_redispatched": chaos_stats.points_redispatched,
            "fault_free_s": round(service_s, 3),
            "recovered_s": round(chaos_s, 3),
        },
    }


def check(result: dict) -> list[str]:
    """The gates: completion and bit-identity (throughput is recorded,
    not gated — supervision overhead is workload- and box-dependent)."""
    failures = []
    mixed = result["mixed_traffic"]
    if mixed["points_completed"] != mixed["total_points"]:
        failures.append(
            f"only {mixed['points_completed']}/"
            f"{mixed['total_points']} points completed")
    if not mixed["bit_identical_to_inline"]:
        failures.append("service counts diverge from the inline run")
    chaos = result["chaos_recovery"]
    if not chaos["bit_identical"]:
        failures.append("chaos-recovered counts diverge from the "
                        "fault-free run")
    if len(chaos["faults_injected"]) != 3:
        failures.append(f"expected 3 injected faults, got "
                        f"{chaos['faults_injected']}")
    return failures


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_mixed_traffic_and_chaos_recovery():
    result = run_benchmark(shots=40, points=4)
    print(f"\n{json.dumps(result, indent=2)}")
    assert not check(result)


# ----------------------------------------------------------------------
# script entry point
# ----------------------------------------------------------------------
def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shots", type=int, default=200)
    parser.add_argument("--points", type=int, default=8)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero unless completion and "
                             "bit-identity gates pass")
    parser.add_argument("--output", type=Path, default=None,
                        help="write the result JSON to this path")
    args = parser.parse_args()
    result = run_benchmark(shots=args.shots, points=args.points,
                           workers=args.workers)
    print(json.dumps(result, indent=2))
    if args.output is not None:
        args.output.write_text(json.dumps(result, indent=2) + "\n")
        print(f"wrote {args.output}")
    if args.check:
        failures = check(result)
        for failure in failures:
            print(f"FAIL: {failure}")
        if failures:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
