"""E9 — Section 5: Rabi-oscillation calibration + single-qubit RB
fidelity.

Paper: the Rabi sweep over uncalibrated ``X_Amp_i`` operations
calibrates the X-pulse amplitude; subsequent RB measured a single-qubit
gate fidelity of 99.90 % (error per gate 0.10 % at the 20 ns interval).
"""

import pytest

from repro.experiments.rabi import format_rabi_report, run_rabi_experiment
from repro.experiments.rb_timing import run_rb_timing_experiment


def test_rabi_oscillation(benchmark):
    result = benchmark.pedantic(run_rabi_experiment,
                                kwargs={"num_steps": 21, "shots": 150,
                                        "seed": 13},
                                rounds=1, iterations=1)
    print()
    print(format_rabi_report(result))
    # The sweep calibrates the pi pulse at the midpoint of the 2*pi
    # amplitude ramp (within one step of sampling noise).
    assert abs(result.pi_pulse_step - 10) <= 1
    # The oscillation tracks sin^2(theta/2).
    assert result.max_deviation() < 0.12


def test_single_qubit_fidelity_9990(benchmark):
    """The paper's headline calibration outcome: F = 99.90 %."""
    result = benchmark.pedantic(
        run_rb_timing_experiment,
        kwargs={"intervals_ns": (20,), "max_length": 1000,
                "num_lengths": 7, "num_sequences": 2, "seed": 4},
        rounds=1, iterations=1)
    error = result.error_by_interval()[20]
    fidelity = 1.0 - error
    print(f"\nsingle-qubit gate fidelity at 20 ns interval: "
          f"{fidelity * 100:.2f}% (paper: 99.90%)")
    assert fidelity == pytest.approx(0.9990, abs=5e-4)
