"""E10 — Table 1: full instruction-set behaviour and toolchain
throughput.

Covers every mnemonic of Table 1 end to end — assemble -> 32-bit words
-> disassemble -> reassemble fixpoint — and times the assembler and
decoder on a realistic compiled program (an RB sequence), since the
assembler sits on the experiment-iteration critical path the paper
highlights ("considerable speedup in performing these experiments with
the eQASM control paradigm").
"""

import numpy as np
import pytest

from repro.compiler.codegen import EQASMCodeGenerator
from repro.compiler.scheduler import schedule_asap
from repro.core import Assembler, Disassembler, seven_qubit_instantiation
from repro.workloads.rb import rb_sequence_circuit

TABLE1_PROGRAM = """
start:
    LDI R0, 5
    LDI R1, -3
    LDUI R2, 10, R0
    ADD R3, R0, R1
    SUB R4, R0, R1
    AND R5, R0, R1
    OR R6, R0, R1
    XOR R7, R0, R1
    NOT R8, R1
    ST R3, R0(8)
    LD R9, R0(8)
    CMP R3, R9
    FBR EQ, R10
    BR NE, skip
    NOP
skip:
    SMIS S0, {0}
    SMIS S7, {0, 2}
    SMIT T3, {(2, 0)}
    QWAIT 100
    QWAITR R0
    0, Y S7
    1, X90 S0 | MEASZ S7
    CZ T3
    FMR R11, Q0
    STOP
"""


@pytest.fixture(scope="module")
def isa():
    return seven_qubit_instantiation()


def test_table1_every_mnemonic_roundtrips(benchmark, isa):
    assembler = Assembler(isa)
    disassembler = Disassembler(isa)

    def roundtrip():
        assembled = assembler.assemble_text(TABLE1_PROGRAM)
        text = disassembler.disassemble_text(assembled.words)
        again = assembler.assemble_text(text)
        return assembled, again

    assembled, again = benchmark(roundtrip)
    assert assembled.words == again.words
    print(f"\nTable 1 program: {len(assembled.words)} words, "
          f"round-trip fixpoint holds")


def test_assembler_throughput_on_compiled_rb(benchmark, isa):
    rng = np.random.default_rng(0)
    circuit = rb_sequence_circuit(200, rng, qubit=0, num_qubits=1)
    schedule = schedule_asap(circuit, isa.operations)
    program = EQASMCodeGenerator(isa).generate(schedule)
    assembler = Assembler(isa)

    assembled = benchmark(assembler.assemble_program, program)
    rate = len(assembled.words)
    print(f"\ncompiled RB program: {rate} instruction words")
    assert rate > 200


def test_decoder_throughput(benchmark, isa):
    rng = np.random.default_rng(1)
    circuit = rb_sequence_circuit(200, rng, qubit=0, num_qubits=1)
    schedule = schedule_asap(circuit, isa.operations)
    program = EQASMCodeGenerator(isa).generate(schedule)
    words = Assembler(isa).assemble_program(program).words
    disassembler = Disassembler(isa)

    decoded = benchmark(disassembler.disassemble, words)
    assert len(decoded.instructions) == len(words)
