"""E16 — branch-resolved replay: feedback-program shot throughput.

PR 1's shot-replay engine only covered feedback-free programs; every
workload exercising eQASM's headline features — fast conditional
execution (active reset, Fig. 4) and CFC via ``FMR`` (Fig. 5) — fell
back to the cycle-accurate interpreter.  This benchmark measures
end-to-end shot throughput of the interpreter vs the branch-resolved
timeline tree (:mod:`repro.uarch.replay`) on exactly those feedback
programs, and cross-checks per-outcome-path timing bit-identity plus
measurement statistics between the engines.

Four scenarios cover the formerly fallback-only cases:

* **mock_cfc** — the Fig. 5 CFC-verification program with a long
  alternating mock-result queue; the draining queue keys the timeline
  tree's roots (cursor fingerprints), so the run replays and the
  emitted X/Y alternation is cross-checked shot by shot against the
  interpreter;
* **dead_store_sweep** — a CFC program depositing its measurement
  result to data memory (a dead store, whitelisted by the dataflow
  pass) run as a repeated sweep: the same binary is ``run()`` several
  times and later runs reuse the saturated tree from the machine's
  cross-run replay cache (zero growth shots);
* **looped_surface_code** — the seven-qubit multi-round syndrome
  binary written as a genuine counted ``SUB``/``CMP``/``BR`` loop
  (not compile-time unrolled): the dataflow pass resolves the trip
  count, so the looping binary rides replay
  (``EngineStats.bounded_loops``).  Measured *three ways* since the
  stabilizer plant backend landed: the dense-matrix interpreter (the
  historical wall), the tableau interpreter (every plant operation
  polynomial — gated at >= 10x over dense when recording) and the
  replay tree (growth shots on the tableau, cached shots pure trace
  splices — both fast paths compound);
* **scratch_spill_reload** — the comprehensive-benchmark kernel that
  spills both CFC round results to data memory, reloads and combines
  them: every load is killed by a same-shot store
  (``EngineStats.killed_loads``), so the same-shot ST -> LD traffic
  no longer forces the interpreter;
* **surface17** — distance-3 syndrome extraction on the 17-qubit chip
  (64-bit instantiation): a workload the dense backend cannot
  represent at all (a 2^17-dim density matrix is ~256 GB), run
  tableau-interpreter vs tableau-replay.  Backend selection is
  asserted per scenario: stabilizer for every Clifford scenario here,
  dense for the Rabi/AllXY programs of the feedback-free bench;
* **surface49** — distance-5 syndrome extraction on the 49-qubit chip
  through the 192-bit spec-driven instantiation
  (``specs/surface49-192bit.json``, 160-bit pair masks): the widest
  binary the encoder serves, run tableau-interpreter vs tableau-replay
  and gated separately (``SURFACE49_CHECK_TARGET``) because its
  12-measurement rounds grow the outcome tree faster than the other
  scenarios at smoke shot counts.

The looped-surface-code and surface17 scenarios additionally measure
the **Pauli-frame batched engine**: the feedback-free program variants
(``reset=False`` — no conditional ``C_X``) under stochastic Pauli
*gate* noise, the regime where per-shot trajectory sampling blocks the
replay tree.  One noise-free reference tableau shot records the
Clifford sequence; frames then propagate errors for whole shot batches
with vectorised numpy ops (:mod:`repro.quantum.pauli_frame`).  The
surface-17 frame speedup over the per-shot tableau interpreter is
gated — >= 25x when recording, >= 10x in CI (``--check``).

Runs two ways:

* under pytest (``pytest benchmarks/bench_feedback_throughput.py``)
  as a regression gate asserting the >= 5x speedup target;
* as a script (``python benchmarks/bench_feedback_throughput.py
  [--shots N] [--check] [--output BENCH_feedback_throughput.json]``)
  — the recorded numbers live in ``BENCH_feedback_throughput.json``
  at the repository root.  ``--check`` gates at the CI floor (3x),
  below the 5x recording target, so shared-runner jitter does not
  flake the build.
"""

import argparse
import json
import math
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # script mode without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.core import Assembler, forty_nine_qubit_instantiation, \
    seven_qubit_instantiation, seventeen_qubit_instantiation, \
    two_qubit_instantiation
from repro.experiments.cfc import (
    CFC_SCRATCH_PROGRAM,
    CFC_TWO_ROUND_PROGRAM,
    FIG5_PROGRAM,
)
from repro.experiments.reset import FIG4_PROGRAM
from repro.experiments.runner import ExperimentSetup
from repro.experiments.surface_code import looped_surface_code_program
from repro.quantum import NoiseModel, QuantumPlant
from repro.quantum.noise import DecoherenceModel, GateErrorModel
from repro.uarch import QuMAv2
from repro.workloads.surface17 import (
    SURFACE17_Z_ANCILLAS,
    surface17_circuit,
)
from repro.workloads.surface49 import (
    SURFACE49_Z_ANCILLAS,
    surface49_circuit,
)

#: Required end-to-end speedup when recording BENCH_ numbers.
SPEEDUP_TARGET = 5.0
#: CI gate (``--check``): regressions below this fail the build.
CHECK_TARGET = 3.0
#: Required tableau-over-dense interpreter speedup on the looped
#: surface-code scenario when recording.
TABLEAU_SPEEDUP_TARGET = 10.0
#: CI floor for the tableau interpreter speedup.
TABLEAU_CHECK_TARGET = 5.0
#: CI floor for the surface-49 replay speedup.  The distance-5 replay
#: ratio is gated separately from ``min_speedup``: one round has 12
#: readout-noisy measurements, so at smoke shot counts a larger
#: fraction of shots are tree-growth (interpreter) shots and the
#: ratio sits near ~4x, converging past 5x at recording scale
#: (10.2x recorded at 2000 shots) — a shared 3x gate would flake
#: while every other scenario clears 17x.
SURFACE49_CHECK_TARGET = 2.0
#: Recording target for the Pauli-frame batched engine over the
#: per-shot tableau interpreter on the stochastic-Pauli-noise
#: scenarios (recorded 61x on surface-17 and 164x on the looped
#: surface code: one reference tableau shot, then vectorised frame
#: propagation per batch).
FRAME_SPEEDUP_TARGET = 25.0
#: CI floor for the frame-batched speedup (shared-runner margin).
FRAME_CHECK_TARGET = 10.0

PROGRAMS = {"active_reset": FIG4_PROGRAM, "cfc": CFC_TWO_ROUND_PROGRAM}

#: The dead_store_sweep program: two-branch CFC feedback whose result
#: is deposited into data memory for the host — a store the dataflow
#: pass proves dead (no LD), so the program replays.
DEAD_STORE_PROGRAM = """
SMIS S0, {0}
SMIS S2, {2}
LDI R0, 1
QWAIT 10000
X90 S2
MEASZ S2
QWAIT 50
FMR R1, Q2
CMP R1, R0
BR EQ, eq
X S0
BR ALWAYS, join
eq:
Y S0
join:
LDI R2, 64
ST R1, R2(0)
QWAIT 50
STOP
"""

#: run() calls per engine in the dead_store_sweep scenario (the sweep
#: whose later runs must hit the cross-run tree cache).
SWEEP_RUNS = 5

#: Syndrome rounds of the looped surface-code binary.
SURFACE_CODE_ROUNDS = 4

#: Sampling fraction of the self-verifying replay audit in the
#: overhead scenario (the production-recommended spot check).
AUDIT_FRACTION = 0.01
#: Recording gate on the audit *machinery* overhead — the cost of the
#: audit bookkeeping beyond the unavoidable shadow interpreter shots.
#: The end-to-end overhead at f=0.01 is dominated by those shadow runs
#: (each costs one interpreter shot, ~50x a replayed shot on active
#: reset, so ~50% end to end); that physics is recorded honestly but
#: not gated — what must stay cheap is everything the audit adds *on
#: top*: forcing results, field comparison, credit accounting.
AUDIT_MACHINERY_TARGET = 0.05
#: CI floor for the machinery overhead (shared-runner jitter margin).
AUDIT_MACHINERY_CHECK = 0.25
#: Repeats per timed replay run in the audit-overhead scenario; the
#: minimum is taken (the machinery delta is small, so jitter matters).
AUDIT_REPEATS = 3

#: Recording gate on fully-enabled observability overhead (metrics +
#: tracing, sample_fraction=1.0) for the replayed active-reset run —
#: the hottest instrumented path (a cached shot is ~10 us, so every
#: nanosecond of hook cost shows here first).
OBS_OVERHEAD_TARGET = 0.05
#: CI floor for the observability overhead (shared-runner jitter).
OBS_OVERHEAD_CHECK = 0.15
#: Interleaved repeats per arm of the observability A/B (min taken).
OBS_REPEATS = 4


def _readout_only_noise() -> NoiseModel:
    """Readout flips only: raw syndromes stay deterministic (the
    outcome tree stays compact at 8 measurements per shot) while the
    reported bits — and the C_X resets they steer — keep every branch
    of the feedback machinery genuinely exercised."""
    return NoiseModel(
        decoherence=DecoherenceModel(t1_ns=1e15, t2_ns=1e15),
        gate_error=GateErrorModel(single_qubit_error=0.0,
                                  two_qubit_error=0.0))


def _pauli_noise() -> NoiseModel:
    """Stochastic Pauli gate noise (negligible decoherence): the
    per-shot trajectory sampling blocks the replay tree, so these
    runs either pay the interpreter per shot or — when the gate
    sequence cannot fork on outcomes — ride the Pauli-frame batch."""
    return NoiseModel(
        decoherence=DecoherenceModel(t1_ns=1e15, t2_ns=1e15),
        gate_error=GateErrorModel(single_qubit_error=0.001,
                                  two_qubit_error=0.005))


def _make_machine(text: str, seed: int, isa=None,
                  noise: NoiseModel | None = None,
                  plant_backend: str = "auto",
                  audit_fraction: float = 0.0) -> QuMAv2:
    isa = isa or two_qubit_instantiation()
    plant = QuantumPlant(isa.topology,
                         noise=noise if noise is not None else NoiseModel(),
                         rng=np.random.default_rng(seed))
    machine = QuMAv2(isa, plant, plant_backend=plant_backend,
                     audit_fraction=audit_fraction)
    machine.load(Assembler(isa).assemble_text(text))
    return machine


def _time_run(machine: QuMAv2, shots: int, use_replay: bool):
    start = time.perf_counter()
    traces = machine.run(shots, use_replay=use_replay)
    elapsed = time.perf_counter() - start
    return traces, elapsed


def _measure_frame_engine(make, shots: int, interp_shots: int,
                          ancillas, rounds: int) -> dict:
    """Per-shot tableau interpreter vs the Pauli-frame batch.

    ``make(offset)`` builds a machine (stochastic Pauli gate noise, a
    feedback-free program) with a seed offset.  The trajectory noise
    blocks the replay tree, so the per-shot baseline is the tableau
    *interpreter* — sampled at ``interp_shots`` and compared as a
    rate, the same convention as the dense baselines.  Cross-checks:
    frame-engine selection and accounting, per-outcome-path timing
    identity against the interpreter, and per-ancilla per-round
    syndrome rates (the Pauli noise makes them stochastic, so this
    exercises the frames' error propagation, not just the splicing).
    """
    interpreter = make(0)
    interp_traces, interp_s = _time_run(interpreter, interp_shots,
                                        use_replay=False)
    assert interpreter.last_run_engine == "interpreter"
    assert interpreter.last_plant_backend == "stabilizer", \
        f"tableau refused: {interpreter.plant_backend_reason}"

    frame = make(1)
    frame_traces, frame_s = _time_run(frame, shots, use_replay=True)
    assert frame.last_run_engine == "frame", \
        f"frame refused: {frame.replay_fallback_reason}"
    assert frame.last_plant_backend == "stabilizer"
    stats = frame.engine_stats
    assert stats.frame_batched == shots
    assert stats.frame_reference_shots == 1
    assert not stats.degradations, stats.degradations

    for trace in interp_traces + frame_traces:
        assert len(trace.results) == len(ancillas) * rounds

    # Feedback-free programs have one timing path; every frame trace
    # must splice onto it bit-identically.
    interp_by_path = {}
    for trace in interp_traces:
        interp_by_path.setdefault(trace.outcome_path(), trace)
    checked = 0
    for trace in frame_traces:
        reference = interp_by_path.get(trace.outcome_path())
        if reference is None:
            continue
        assert reference.triggers == trace.triggers
        assert reference.classical_time_ns == trace.classical_time_ns
        checked += 1
    assert checked > 0, "no outcome path common to both engines"

    tolerance = 4.5 * math.sqrt(0.5 / min(interp_shots, shots))
    for ancilla in ancillas:
        for round_index in range(rounds):
            def rate(traces):
                fired = sum(
                    [r.reported_result for r in t.results
                     if r.qubit == ancilla][round_index]
                    for t in traces)
                return fired / len(traces)
            assert abs(rate(interp_traces) - rate(frame_traces)) < \
                tolerance, f"ancilla {ancilla} round {round_index}"

    interp_rate = interp_shots / interp_s
    frame_rate = shots / frame_s
    return {
        "frame_noise_interpreter_shots_per_sec": round(interp_rate, 1),
        "frame_shots_per_sec": round(frame_rate, 1),
        "frame_speedup": round(frame_rate / interp_rate, 2),
        "frame_paths_checked": checked,
        "frame_engine_stats": stats.as_dict(),
    }


def measure_program(name: str, shots: int = 2000, seed: int = 13) -> dict:
    """Throughput of both engines on one program, with cross-checks."""
    interpreter = _make_machine(PROGRAMS[name], seed)
    interp_traces, interp_s = _time_run(interpreter, shots,
                                        use_replay=False)
    assert interpreter.last_run_engine == "interpreter"

    replay = _make_machine(PROGRAMS[name], seed)
    replay_traces, replay_s = _time_run(replay, shots, use_replay=True)
    assert replay.last_run_engine == "replay", \
        f"replay refused: {replay.replay_fallback_reason}"
    # Calibrated T1/T2 noise is not Pauli: these scenarios must stay
    # on the dense backend (the selection gate's negative case).
    assert replay.last_plant_backend == "dense"
    stats = replay.engine_stats

    # Per-outcome-path timing equivalence: every path the replay engine
    # produced must have bit-identical timing records to an interpreter
    # trace that followed the same reported outcomes.
    interp_by_path = {}
    for trace in interp_traces:
        interp_by_path.setdefault(trace.outcome_path(), trace)
    checked = 0
    for trace in replay_traces:
        reference = interp_by_path.get(trace.outcome_path())
        if reference is None:
            continue
        assert reference.triggers == trace.triggers
        assert reference.slips == trace.slips
        assert reference.classical_time_ns == trace.classical_time_ns
        checked += 1
    assert checked > 0, "no outcome path common to both engines"

    # Statistical equivalence of the final per-qubit outcome (~4.5
    # sigma of the difference of two p=0.5 samples, so low-shot smoke
    # runs stay sound).
    tolerance = 4.5 * math.sqrt(0.5 / shots)
    for qubit in {r.qubit for r in interp_traces[0].results}:
        interp_p = sum(t.last_result(qubit) for t in interp_traces) / shots
        replay_p = sum(t.last_result(qubit) for t in replay_traces) / shots
        assert abs(interp_p - replay_p) < tolerance, \
            f"{name} qubit {qubit}: {interp_p} vs {replay_p}"

    return {
        "shots": shots,
        "interpreter_shots_per_sec": round(shots / interp_s, 1),
        "replay_shots_per_sec": round(shots / replay_s, 1),
        "speedup": round(interp_s / replay_s, 2),
        "paths_checked": checked,
        "engine_stats": stats.as_dict(),
    }


def measure_mock_cfc(shots: int = 2000, seed: int = 13) -> dict:
    """Mock-result CFC verification at shot-sweep scale.

    Both machines get the same long alternating mock queue; the
    outcomes are therefore *fully deterministic per shot index*, so the
    cross-check is the strongest possible one — every shot's timing
    records must be bit-identical between the engines, and the applied
    X/Y alternation (the paper's scope observable) must be exact.
    """
    pattern = [i % 2 for i in range(shots)]

    def applied_ops(trace):
        return [r.name for r in trace.triggers
                if r.qubits == (0,) and r.executed]

    interpreter = _make_machine(FIG5_PROGRAM, seed)
    interpreter.measurement_unit.inject_mock_results(2, pattern)
    interp_traces, interp_s = _time_run(interpreter, shots,
                                        use_replay=False)
    assert interpreter.last_run_engine == "interpreter"

    replay = _make_machine(FIG5_PROGRAM, seed)
    replay.measurement_unit.inject_mock_results(2, pattern)
    replay_traces, replay_s = _time_run(replay, shots, use_replay=True)
    assert replay.last_run_engine == "replay", \
        f"replay refused: {replay.replay_fallback_reason}"
    stats = replay.engine_stats

    expected = [["X"], ["Y"]] * (shots // 2 + 1)
    for index, (interp_trace, replay_trace) in enumerate(
            zip(interp_traces, replay_traces)):
        assert interp_trace.triggers == replay_trace.triggers
        assert interp_trace.slips == replay_trace.slips
        assert interp_trace.classical_time_ns == \
            replay_trace.classical_time_ns
        assert applied_ops(replay_trace) == expected[index], \
            f"shot {index} broke the mock alternation"
    assert not replay.measurement_unit.has_mock_results(2)
    assert stats.mock_results_replayed == stats.replay_shots

    return {
        "shots": shots,
        "interpreter_shots_per_sec": round(shots / interp_s, 1),
        "replay_shots_per_sec": round(shots / replay_s, 1),
        "speedup": round(interp_s / replay_s, 2),
        "paths_checked": shots,
        "engine_stats": stats.as_dict(),
    }


def measure_sweep_reuse(shots: int = 2000, seed: int = 13) -> dict:
    """Dead-store CFC program swept: SWEEP_RUNS run() calls per engine.

    The replay machine must grow its tree once and serve every later
    run from the cross-run cache (``tree_reused`` with zero growth
    shots); the recorded speedup is the whole-sweep wall-clock ratio.
    """
    per_run = max(1, shots // SWEEP_RUNS)

    interpreter = _make_machine(DEAD_STORE_PROGRAM, seed)
    start = time.perf_counter()
    interp_traces = []
    for _ in range(SWEEP_RUNS):
        interp_traces.extend(interpreter.run(per_run, use_replay=False))
    interp_s = time.perf_counter() - start
    assert interpreter.last_run_engine == "interpreter"

    replay = _make_machine(DEAD_STORE_PROGRAM, seed)
    start = time.perf_counter()
    replay_traces = []
    reuse_stats = []
    for _ in range(SWEEP_RUNS):
        replay_traces.extend(replay.run(per_run, use_replay=True))
        reuse_stats.append(replay.engine_stats)
    replay_s = time.perf_counter() - start
    assert replay.last_run_engine == "replay", \
        f"replay refused: {replay.replay_fallback_reason}"
    assert not reuse_stats[0].tree_reused
    for stats in reuse_stats[1:]:
        assert stats.tree_reused, "cross-run tree cache missed"
    growth_after_first = sum(stats.interpreter_shots
                             for stats in reuse_stats[1:])
    assert growth_after_first == 0, \
        f"{growth_after_first} growth shots after the first run"

    interp_by_path = {}
    for trace in interp_traces:
        interp_by_path.setdefault(trace.outcome_path(), trace)
    checked = 0
    for trace in replay_traces:
        reference = interp_by_path.get(trace.outcome_path())
        if reference is None:
            continue
        assert reference.triggers == trace.triggers
        assert reference.classical_time_ns == trace.classical_time_ns
        checked += 1
    assert checked > 0, "no outcome path common to both engines"

    total = SWEEP_RUNS * per_run
    return {
        "shots": total,
        "runs": SWEEP_RUNS,
        "interpreter_shots_per_sec": round(total / interp_s, 1),
        "replay_shots_per_sec": round(total / replay_s, 1),
        "speedup": round(interp_s / replay_s, 2),
        "paths_checked": checked,
        "growth_shots_after_first_run": growth_after_first,
        "engine_stats": reuse_stats[-1].as_dict(),
    }


def measure_looped_surface_code(shots: int = 2000, seed: int = 13) -> dict:
    """Multi-round surface-code syndrome extraction as a counted loop.

    Three-way measurement: the dense-matrix interpreter (the 128x128-
    per-gate wall, sampled at a reduced shot count and extrapolated as
    a rate), the stabilizer-tableau interpreter (automatic backend
    selection — every gate Clifford, noise readout-only) and the
    replay tree on top of the tableau.  Cross-checks: per-outcome-path
    timing bit-identity between the tableau engines, per-ancilla
    syndrome statistics across all three runs, and the backend
    selections themselves.
    """
    program = looped_surface_code_program(SURFACE_CODE_ROUNDS)

    def make(machine_seed, plant_backend="auto"):
        return _make_machine(program, machine_seed,
                             isa=seven_qubit_instantiation(),
                             noise=_readout_only_noise(),
                             plant_backend=plant_backend)

    # Dense-interpreter baseline: a few shots/s, so sample fewer shots
    # and compare rates (the recorded throughputs are rates anyway).
    dense_shots = max(50, shots // 10)
    dense = make(seed, plant_backend="dense")
    dense_traces, dense_s = _time_run(dense, dense_shots,
                                      use_replay=False)
    assert dense.last_run_engine == "interpreter"
    assert dense.last_plant_backend == "dense"

    tableau = make(seed + 1)
    tableau_traces, tableau_s = _time_run(tableau, shots,
                                          use_replay=False)
    assert tableau.last_run_engine == "interpreter"
    assert tableau.last_plant_backend == "stabilizer", \
        f"tableau refused: {tableau.plant_backend_reason}"

    replay = make(seed + 2)
    replay_traces, replay_s = _time_run(replay, shots, use_replay=True)
    assert replay.last_run_engine == "replay", \
        f"replay refused: {replay.replay_fallback_reason}"
    assert replay.last_plant_backend == "stabilizer"
    assert replay.replay_fallback_reason is None
    stats = replay.engine_stats
    assert stats.bounded_loops == 1, "the loop was not statically bounded"

    for trace in dense_traces + tableau_traces + replay_traces:
        assert len(trace.results) == 2 * SURFACE_CODE_ROUNDS

    interp_by_path = {}
    for trace in tableau_traces:
        interp_by_path.setdefault(trace.outcome_path(), trace)
    checked = 0
    for trace in replay_traces:
        reference = interp_by_path.get(trace.outcome_path())
        if reference is None:
            continue
        assert reference.triggers == trace.triggers
        assert reference.slips == trace.slips
        assert reference.classical_time_ns == trace.classical_time_ns
        checked += 1
    assert checked > 0, "no outcome path common to both engines"

    # Per-ancilla, per-round syndrome rates must agree statistically —
    # across engines *and* across plant backends (the dense run has
    # fewer shots, so its sampling error dominates the tolerance).
    def rate(traces, ancilla, round_index):
        fired = sum(
            [r.reported_result for r in t.results
             if r.qubit == ancilla][round_index]
            for t in traces)
        return fired / len(traces)

    for ancilla in (2, 4):
        for round_index in range(SURFACE_CODE_ROUNDS):
            reference = rate(tableau_traces, ancilla, round_index)
            assert abs(reference -
                       rate(replay_traces, ancilla, round_index)) < \
                4.5 * math.sqrt(0.5 / shots), \
                f"ancilla {ancilla} round {round_index} (replay)"
            assert abs(reference -
                       rate(dense_traces, ancilla, round_index)) < \
                4.5 * math.sqrt(0.5 / dense_shots), \
                f"ancilla {ancilla} round {round_index} (dense)"

    # Pauli-frame batch: under stochastic gate noise the replay tree
    # is blocked (per-shot trajectory sampling), and the feedback-free
    # loop variant (no conditional C_X) keeps the Clifford sequence
    # shot-invariant — one reference tableau shot, then vectorised
    # frame propagation.
    frame_program = looped_surface_code_program(SURFACE_CODE_ROUNDS,
                                                reset=False)

    def make_frame(offset):
        return _make_machine(frame_program, seed + 3 + offset,
                             isa=seven_qubit_instantiation(),
                             noise=_pauli_noise())

    frame = _measure_frame_engine(make_frame, shots=shots,
                                  interp_shots=max(100, shots // 10),
                                  ancillas=(2, 4),
                                  rounds=SURFACE_CODE_ROUNDS)

    dense_rate = dense_shots / dense_s
    tableau_rate = shots / tableau_s
    replay_rate = shots / replay_s
    return {
        "shots": shots,
        "rounds": SURFACE_CODE_ROUNDS,
        "interpreter_shots_per_sec": round(dense_rate, 1),
        "tableau_interpreter_shots_per_sec": round(tableau_rate, 1),
        "tableau_interpreter_speedup": round(tableau_rate / dense_rate,
                                             2),
        "replay_shots_per_sec": round(replay_rate, 1),
        "speedup": round(replay_rate / dense_rate, 2),
        "paths_checked": checked,
        "engine_stats": stats.as_dict(),
        **frame,
    }


#: Syndrome rounds of the distance-3 surface-17 scenario (kept at 2 so
#: the 8-measurement outcome tree saturates within a smoke run).
SURFACE17_ROUNDS = 2


def measure_surface17(shots: int = 2000, seed: int = 13) -> dict:
    """Distance-3 syndrome extraction on the 17-qubit chip.

    This scenario has no dense baseline by construction: a 17-qubit
    density matrix is a 2^17 x 2^17 complex array (~256 GB), which is
    exactly why the stabilizer backend exists.  Measured
    tableau-interpreter vs tableau-replay through the compiled 64-bit
    binary, with the usual timing-bit and statistics cross-checks.
    """
    setup = ExperimentSetup.create(isa=seventeen_qubit_instantiation(),
                                   noise=_readout_only_noise(),
                                   seed=seed)
    assembled = setup.compile_circuit(
        surface17_circuit(rounds=SURFACE17_ROUNDS))

    def make(machine_seed):
        isa = seventeen_qubit_instantiation()
        plant = QuantumPlant(isa.topology, noise=_readout_only_noise(),
                             rng=np.random.default_rng(machine_seed))
        machine = QuMAv2(isa, plant)
        machine.load(assembled)
        return machine

    interpreter = make(seed)
    interp_traces, interp_s = _time_run(interpreter, shots,
                                        use_replay=False)
    assert interpreter.last_run_engine == "interpreter"
    assert interpreter.last_plant_backend == "stabilizer", \
        f"tableau refused: {interpreter.plant_backend_reason}"

    replay = make(seed + 1)
    replay_traces, replay_s = _time_run(replay, shots, use_replay=True)
    assert replay.last_run_engine == "replay", \
        f"replay refused: {replay.replay_fallback_reason}"
    assert replay.last_plant_backend == "stabilizer"
    stats = replay.engine_stats

    for trace in interp_traces + replay_traces:
        assert len(trace.results) == \
            len(SURFACE17_Z_ANCILLAS) * SURFACE17_ROUNDS

    interp_by_path = {}
    for trace in interp_traces:
        interp_by_path.setdefault(trace.outcome_path(), trace)
    checked = 0
    for trace in replay_traces:
        reference = interp_by_path.get(trace.outcome_path())
        if reference is None:
            continue
        assert reference.triggers == trace.triggers
        assert reference.classical_time_ns == trace.classical_time_ns
        checked += 1
    assert checked > 0, "no outcome path common to both engines"

    tolerance = 4.5 * math.sqrt(0.5 / shots)
    for ancilla in SURFACE17_Z_ANCILLAS:
        for round_index in range(SURFACE17_ROUNDS):
            def rate(traces):
                fired = sum(
                    [r.reported_result for r in t.results
                     if r.qubit == ancilla][round_index]
                    for t in traces)
                return fired / len(traces)
            assert abs(rate(interp_traces) - rate(replay_traces)) < \
                tolerance, f"ancilla {ancilla} round {round_index}"

    # Pauli-frame batch on the 17-qubit chip: the feedback-free
    # variant (reset=False) under stochastic Pauli gate noise — the
    # regime where neither replay (trajectory sampling) nor the
    # noise-free template applies, so before the frame engine every
    # shot paid the full tableau interpreter.
    frame_assembled = setup.compile_circuit(
        surface17_circuit(rounds=SURFACE17_ROUNDS, reset=False))

    def make_frame(offset):
        isa = seventeen_qubit_instantiation()
        plant = QuantumPlant(isa.topology, noise=_pauli_noise(),
                             rng=np.random.default_rng(seed + 3 + offset))
        machine = QuMAv2(isa, plant)
        machine.load(frame_assembled)
        return machine

    frame = _measure_frame_engine(make_frame, shots=shots,
                                  interp_shots=max(100, shots // 10),
                                  ancillas=SURFACE17_Z_ANCILLAS,
                                  rounds=SURFACE17_ROUNDS)

    return {
        "shots": shots,
        "rounds": SURFACE17_ROUNDS,
        "qubits": 17,
        "interpreter_shots_per_sec": round(shots / interp_s, 1),
        "replay_shots_per_sec": round(shots / replay_s, 1),
        "speedup": round(interp_s / replay_s, 2),
        "paths_checked": checked,
        "engine_stats": stats.as_dict(),
        **frame,
    }


#: Syndrome rounds of the distance-5 surface-49 scenario.  One round
#: keeps the outcome tree at 12 reported bits, so the readout-noise
#: paths still concentrate enough for the tree to saturate in a smoke
#: run (two rounds would give 2^24 possible paths).
SURFACE49_ROUNDS = 1


def measure_surface49(shots: int = 2000, seed: int = 13) -> dict:
    """Distance-5 syndrome extraction on the 49-qubit chip.

    The widest instantiation the spec-driven encoder serves: 192-bit
    words, 160-bit pair masks (``specs/surface49-192bit.json``).  A
    dense 49-qubit state is ~2^101 bytes, so as with surface-17 the
    tableau is the only baseline; it is sampled at a reduced shot
    count and compared as a rate (a 49-qubit tableau interpreter shot
    is expensive — which is exactly what the replay tree and the
    Pauli-frame batch amortise).
    """
    setup = ExperimentSetup.create(isa=forty_nine_qubit_instantiation(),
                                   noise=_readout_only_noise(),
                                   seed=seed)
    assembled = setup.compile_circuit(
        surface49_circuit(rounds=SURFACE49_ROUNDS))

    def make(machine_seed):
        isa = forty_nine_qubit_instantiation()
        plant = QuantumPlant(isa.topology, noise=_readout_only_noise(),
                             rng=np.random.default_rng(machine_seed))
        machine = QuMAv2(isa, plant)
        machine.load(assembled)
        return machine

    interp_shots = max(100, shots // 4)
    interpreter = make(seed)
    interp_traces, interp_s = _time_run(interpreter, interp_shots,
                                        use_replay=False)
    assert interpreter.last_run_engine == "interpreter"
    assert interpreter.last_plant_backend == "stabilizer", \
        f"tableau refused: {interpreter.plant_backend_reason}"

    replay = make(seed + 1)
    replay_traces, replay_s = _time_run(replay, shots, use_replay=True)
    assert replay.last_run_engine == "replay", \
        f"replay refused: {replay.replay_fallback_reason}"
    assert replay.last_plant_backend == "stabilizer"
    stats = replay.engine_stats

    for trace in interp_traces + replay_traces:
        assert len(trace.results) == \
            len(SURFACE49_Z_ANCILLAS) * SURFACE49_ROUNDS

    interp_by_path = {}
    for trace in interp_traces:
        interp_by_path.setdefault(trace.outcome_path(), trace)
    checked = 0
    for trace in replay_traces:
        reference = interp_by_path.get(trace.outcome_path())
        if reference is None:
            continue
        assert reference.triggers == trace.triggers
        assert reference.classical_time_ns == trace.classical_time_ns
        checked += 1
    assert checked > 0, "no outcome path common to both engines"

    tolerance = 4.5 * math.sqrt(0.5 / min(interp_shots, shots))
    for ancilla in SURFACE49_Z_ANCILLAS:
        for round_index in range(SURFACE49_ROUNDS):
            def rate(traces):
                fired = sum(
                    [r.reported_result for r in t.results
                     if r.qubit == ancilla][round_index]
                    for t in traces)
                return fired / len(traces)
            assert abs(rate(interp_traces) - rate(replay_traces)) < \
                tolerance, f"ancilla {ancilla} round {round_index}"

    # Pauli-frame batch at distance 5: the feedback-free variant under
    # stochastic Pauli gate noise.  The per-shot tableau interpreter
    # pays ~49^2 tableau bits per gate per shot; the frame engine pays
    # one reference shot plus vectorised frame propagation, so the
    # batching advantage *grows* with the chip.
    frame_assembled = setup.compile_circuit(
        surface49_circuit(rounds=SURFACE49_ROUNDS, reset=False))

    def make_frame(offset):
        isa = forty_nine_qubit_instantiation()
        plant = QuantumPlant(isa.topology, noise=_pauli_noise(),
                             rng=np.random.default_rng(seed + 3 + offset))
        machine = QuMAv2(isa, plant)
        machine.load(frame_assembled)
        return machine

    frame = _measure_frame_engine(make_frame, shots=shots,
                                  interp_shots=max(50, shots // 10),
                                  ancillas=SURFACE49_Z_ANCILLAS,
                                  rounds=SURFACE49_ROUNDS)

    interp_rate = interp_shots / interp_s
    replay_rate = shots / replay_s
    return {
        "shots": shots,
        "rounds": SURFACE49_ROUNDS,
        "qubits": 49,
        "interpreter_shots_per_sec": round(interp_rate, 1),
        "replay_shots_per_sec": round(replay_rate, 1),
        "speedup": round(replay_rate / interp_rate, 2),
        "paths_checked": checked,
        "engine_stats": stats.as_dict(),
        **frame,
    }


def measure_scratch_spill_reload(shots: int = 2000, seed: int = 13) -> dict:
    """Spill/reload scratch kernel: same-shot ST -> LD traffic.

    Both CFC round results are spilled to data memory and reloaded;
    the kill-analysis proves every load shot-local, so the program
    replays.  Besides the usual path/statistics cross-checks, every
    replayed shot's conditioned X/Y must match its own first-round
    measurement — proving the replayed control flow reflects what the
    reloaded value steered.
    """
    interpreter = _make_machine(CFC_SCRATCH_PROGRAM, seed)
    interp_traces, interp_s = _time_run(interpreter, shots,
                                        use_replay=False)
    assert interpreter.last_run_engine == "interpreter"

    replay = _make_machine(CFC_SCRATCH_PROGRAM, seed + 1)
    replay_traces, replay_s = _time_run(replay, shots, use_replay=True)
    assert replay.last_run_engine == "replay", \
        f"replay refused: {replay.replay_fallback_reason}"
    assert replay.replay_fallback_reason is None
    stats = replay.engine_stats
    assert stats.killed_loads == 2, "the reloads were not proven killed"

    for trace in replay_traces:
        applied = [r.name for r in trace.triggers
                   if r.qubits == (0,) and r.executed]
        expected = "Y" if trace.results[0].reported_result == 1 else "X"
        assert applied == [expected], \
            "replayed feedback diverged from the reloaded value"

    interp_by_path = {}
    for trace in interp_traces:
        interp_by_path.setdefault(trace.outcome_path(), trace)
    checked = 0
    for trace in replay_traces:
        reference = interp_by_path.get(trace.outcome_path())
        if reference is None:
            continue
        assert reference.triggers == trace.triggers
        assert reference.classical_time_ns == trace.classical_time_ns
        checked += 1
    assert checked > 0, "no outcome path common to both engines"

    tolerance = 4.5 * math.sqrt(0.5 / shots)
    for qubit in (0, 2):
        interp_p = sum(t.last_result(qubit) or 0
                       for t in interp_traces) / shots
        replay_p = sum(t.last_result(qubit) or 0
                       for t in replay_traces) / shots
        assert abs(interp_p - replay_p) < tolerance, \
            f"qubit {qubit}: {interp_p} vs {replay_p}"

    return {
        "shots": shots,
        "interpreter_shots_per_sec": round(shots / interp_s, 1),
        "replay_shots_per_sec": round(shots / replay_s, 1),
        "speedup": round(interp_s / replay_s, 2),
        "paths_checked": checked,
        "engine_stats": stats.as_dict(),
    }


def measure_audit_overhead(shots: int = 2000, seed: int = 13) -> dict:
    """Cost of the self-verifying replay audit at f=0.01 (active reset).

    Three timed runs: the interpreter (to price one shadow shot), the
    plain replay engine, and the replay engine with
    ``audit_fraction=AUDIT_FRACTION``.  The audited run's extra time
    decomposes into the unavoidable shadow interpreter shots
    (``replay_audits`` x the measured per-shot interpreter cost) and
    the audit *machinery* (result forcing, six-field comparison,
    credit accounting) — only the machinery is gated, at
    ``AUDIT_MACHINERY_TARGET`` when recording; the honest end-to-end
    overhead is recorded alongside.

    The replay runs use 5x the shot count: a plain replay run of the
    active-reset program finishes in tens of milliseconds, so the
    machinery delta would otherwise drown in timer jitter.
    """
    program = PROGRAMS["active_reset"]
    replay_shots = shots * 5

    interp = _make_machine(program, seed)
    _, interp_s = _time_run(interp, shots, use_replay=False)
    assert interp.last_run_engine == "interpreter"
    interp_per_shot = interp_s / shots

    def timed_replay(audit_fraction: float):
        best_s, best_stats = None, None
        for repeat in range(AUDIT_REPEATS):
            machine = _make_machine(program, seed + repeat,
                                    audit_fraction=audit_fraction)
            _, elapsed = _time_run(machine, replay_shots,
                                   use_replay=True)
            assert machine.last_run_engine == "replay", \
                f"replay refused: {machine.replay_fallback_reason}"
            if best_s is None or elapsed < best_s:
                best_s, best_stats = elapsed, machine.engine_stats
        return best_s, best_stats

    plain_s, _ = timed_replay(0.0)
    audited_s, stats = timed_replay(AUDIT_FRACTION)
    assert stats.replay_audits > 0, "the audit never sampled a shot"
    assert stats.audit_divergences == 0, \
        f"replay audit diverged: {stats.last_audit}"

    shadow_s = stats.replay_audits * interp_per_shot
    end_to_end_overhead = (audited_s - plain_s) / plain_s
    machinery_overhead = (audited_s - plain_s - shadow_s) / plain_s
    return {
        "shots": replay_shots,
        "audit_fraction": AUDIT_FRACTION,
        "replay_audits": stats.replay_audits,
        "audit_divergences": stats.audit_divergences,
        "interpreter_shots_per_sec": round(shots / interp_s, 1),
        "plain_replay_shots_per_sec": round(replay_shots / plain_s, 1),
        "audited_replay_shots_per_sec": round(replay_shots / audited_s,
                                              1),
        "shadow_run_seconds": round(shadow_s, 6),
        "end_to_end_overhead": round(end_to_end_overhead, 4),
        "machinery_overhead": round(machinery_overhead, 4),
        "machinery_overhead_target": AUDIT_MACHINERY_TARGET,
        "machinery_overhead_check": AUDIT_MACHINERY_CHECK,
    }


def measure_observability_overhead(shots: int = 2000, seed: int = 13,
                                   trace_dir: Path | None = None) -> dict:
    """Cost of fully-enabled observability on the replayed active-reset
    run, plus proof that tracing never perturbs the physics.

    Two interleaved arms, minimum of ``OBS_REPEATS`` each: the machine
    bare, and the machine with an attached
    :class:`repro.obs.Observability` (metrics always on, span sampling
    at 1.0).  Alongside the timing, the first repeat of each arm runs
    on the *same* seed and every shot is compared bit for bit —
    identical RNG consumption is the non-perturbation guarantee the
    deterministic credit-accumulator sampling exists to provide.

    With ``trace_dir`` set, the traced run's telemetry is exported
    (Chrome trace + metrics snapshot + event log + rendered markdown
    report) — the artifacts CI uploads from the bench smoke.
    """
    from repro.obs import Observability, render_report

    program = PROGRAMS["active_reset"]
    replay_shots = shots * 5

    def one_run(observe: bool, run_seed: int):
        machine = _make_machine(program, run_seed)
        obs = None
        if observe:
            obs = Observability()
            machine.observability = obs
        start = time.perf_counter()
        traces = machine.run(replay_shots, use_replay=True)
        elapsed = time.perf_counter() - start
        assert machine.last_run_engine == "replay", \
            f"replay refused: {machine.replay_fallback_reason}"
        return traces, elapsed, obs

    plain_s = traced_s = None
    plain_traces = traced_traces = best_obs = None
    for repeat in range(OBS_REPEATS):
        traces, elapsed, _ = one_run(False, seed + repeat)
        if repeat == 0:
            plain_traces = traces
        plain_s = elapsed if plain_s is None else min(plain_s, elapsed)
        traces, elapsed, obs = one_run(True, seed + repeat)
        if repeat == 0:
            traced_traces = traces
        if traced_s is None or elapsed < traced_s:
            traced_s, best_obs = elapsed, obs

    # Non-perturbation: same seed => bit-identical shots, traced or not.
    assert len(plain_traces) == len(traced_traces) == replay_shots
    for plain_trace, traced_trace in zip(plain_traces, traced_traces):
        assert plain_trace.outcome_path() == traced_trace.outcome_path()
        assert plain_trace.triggers == traced_trace.triggers
        assert plain_trace.classical_time_ns == \
            traced_trace.classical_time_ns

    snapshot = best_obs.snapshot()
    spans = best_obs.tracer.spans()
    assert any(span.name == "machine.run" for span in spans)
    assert snapshot["engine.shots_total"]["value"] == replay_shots
    assert "engine.replay.walk.time_ns" in snapshot

    # The timing breakdown the BENCH_ file records: every timing
    # metric of the traced run, summarised.
    breakdown = {}
    for name, payload in snapshot.items():
        leaf = name.rsplit(".", 1)[-1]
        if not (leaf.endswith("_ns") or leaf.endswith("_s")):
            continue
        if payload["type"] == "histogram":
            breakdown[name] = {
                "count": payload["count"],
                "p50_us": round(payload["p50"] / 1e3, 3),
                "p99_us": round(payload["p99"] / 1e3, 3),
                "total_ms": round(payload["sum"] / 1e6, 3),
            }
        else:
            breakdown[name] = {
                "total_ms": round(payload["value"] / 1e6, 3)}

    exported = {}
    if trace_dir is not None:
        paths = best_obs.export(trace_dir, prefix="feedback_bench")
        report_path = Path(trace_dir) / "feedback_bench_report.md"
        report_path.write_text(render_report(
            metrics=snapshot,
            trace_events=best_obs.tracer.chrome_trace_events(),
            title="Feedback bench traced run"))
        paths["report"] = str(report_path)
        exported = {key: str(value) for key, value in paths.items()}

    overhead = (traced_s - plain_s) / plain_s
    result = {
        "shots": replay_shots,
        "disabled_shots_per_sec": round(replay_shots / plain_s, 1),
        "traced_shots_per_sec": round(replay_shots / traced_s, 1),
        "overhead": round(overhead, 4),
        "overhead_target": OBS_OVERHEAD_TARGET,
        "overhead_check": OBS_OVERHEAD_CHECK,
        "spans_recorded": len(spans),
        "metrics_recorded": len(snapshot),
        "timing_breakdown": breakdown,
    }
    if exported:
        result["exported"] = exported
    return result


def _audited_machines(shots: int, seed: int):
    """Yield ``(name, machine)`` with ``audit_fraction=1.0`` for every
    feedback-bench scenario, loaded and ready to run."""
    yield "active_reset", _make_machine(FIG4_PROGRAM, seed,
                                        audit_fraction=1.0)
    yield "cfc", _make_machine(CFC_TWO_ROUND_PROGRAM, seed,
                               audit_fraction=1.0)
    mock = _make_machine(FIG5_PROGRAM, seed, audit_fraction=1.0)
    mock.measurement_unit.inject_mock_results(
        2, [i % 2 for i in range(shots)])
    yield "mock_cfc", mock
    yield "dead_store_sweep", _make_machine(DEAD_STORE_PROGRAM, seed,
                                            audit_fraction=1.0)
    yield "looped_surface_code", _make_machine(
        looped_surface_code_program(SURFACE_CODE_ROUNDS), seed,
        isa=seven_qubit_instantiation(), noise=_readout_only_noise(),
        audit_fraction=1.0)
    yield "scratch_spill_reload", _make_machine(
        CFC_SCRATCH_PROGRAM, seed, audit_fraction=1.0)
    setup = ExperimentSetup.create(isa=seventeen_qubit_instantiation(),
                                   noise=_readout_only_noise(),
                                   seed=seed)
    assembled = setup.compile_circuit(
        surface17_circuit(rounds=SURFACE17_ROUNDS))
    isa = seventeen_qubit_instantiation()
    plant = QuantumPlant(isa.topology, noise=_readout_only_noise(),
                         rng=np.random.default_rng(seed))
    machine = QuMAv2(isa, plant, audit_fraction=1.0)
    machine.load(assembled)
    yield "surface17", machine
    setup49 = ExperimentSetup.create(
        isa=forty_nine_qubit_instantiation(),
        noise=_readout_only_noise(), seed=seed)
    assembled49 = setup49.compile_circuit(
        surface49_circuit(rounds=SURFACE49_ROUNDS))
    isa49 = forty_nine_qubit_instantiation()
    plant49 = QuantumPlant(isa49.topology, noise=_readout_only_noise(),
                           rng=np.random.default_rng(seed))
    machine49 = QuMAv2(isa49, plant49, audit_fraction=1.0)
    machine49.load(assembled49)
    yield "surface49", machine49


def verify_full_audit_identity(shots: int = 400, seed: int = 13) -> dict:
    """Every cached shot shadow-run and compared, on all 8 scenarios.

    With ``audit_fraction=1.0`` each replayed shot is re-executed on
    the interpreter with its recorded outcomes forced, and all six
    audited trace fields (triggers, results, slips, instruction count,
    classical time, stop flag) must match bit for bit — zero
    divergences proves the timeline tree is a faithful stand-in for
    the interpreter on every scenario the feedback bench covers.
    """
    scenarios = {}
    for name, machine in _audited_machines(shots, seed):
        traces = machine.run(shots, use_replay=True)
        stats = machine.engine_stats
        assert len(traces) == shots, name
        assert machine.last_run_engine == "replay", \
            f"{name}: replay refused: {machine.replay_fallback_reason}"
        assert stats.replay_audits == stats.segment_cache_hits > 0, \
            f"{name}: audited {stats.replay_audits} of " \
            f"{stats.segment_cache_hits} cached shots"
        assert stats.audit_divergences == 0, \
            f"{name}: replay audit diverged: {stats.last_audit}"
        scenarios[name] = {
            "shots": shots,
            "replay_audits": stats.replay_audits,
            "audit_divergences": stats.audit_divergences,
        }
    return {"audit_fraction": 1.0, "scenarios": scenarios}


def run_benchmark(shots: int = 2000,
                  trace_dir: Path | None = None) -> dict:
    """Measure every scenario; returns the JSON-ready result tree."""
    programs = {name: measure_program(name, shots=shots)
                for name in PROGRAMS}
    programs["mock_cfc"] = measure_mock_cfc(shots=shots)
    programs["dead_store_sweep"] = measure_sweep_reuse(shots=shots)
    programs["looped_surface_code"] = \
        measure_looped_surface_code(shots=shots)
    programs["scratch_spill_reload"] = \
        measure_scratch_spill_reload(shots=shots)
    programs["surface17"] = measure_surface17(shots=shots)
    programs["surface49"] = measure_surface49(shots=shots)
    return {
        "benchmark": "bench_feedback_throughput",
        "description": "interpreter vs branch-resolved replay tree, "
                       "feedback programs (active reset / CFC / "
                       "surface code d2+d3+d5), end-to-end shots/sec; "
                       "the surface-code scenarios also gate the "
                       "stabilizer plant backend, and the replay "
                       "audit is gated (machinery overhead at f=0.01) "
                       "and verified (bit-identity at f=1.0)",
        "speedup_target": SPEEDUP_TARGET,
        "check_target": CHECK_TARGET,
        "tableau_speedup_target": TABLEAU_SPEEDUP_TARGET,
        "tableau_check_target": TABLEAU_CHECK_TARGET,
        "frame_speedup_target": FRAME_SPEEDUP_TARGET,
        "frame_check_target": FRAME_CHECK_TARGET,
        "programs": programs,
        "observability": measure_observability_overhead(
            shots=shots, trace_dir=trace_dir),
        "replay_audit": measure_audit_overhead(shots=shots),
        "replay_audit_identity": verify_full_audit_identity(
            shots=max(50, shots // 5)),
        "surface49_check_target": SURFACE49_CHECK_TARGET,
        "min_speedup": min(entry["speedup"]
                           for name, entry in programs.items()
                           if name != "surface49"),
        "tableau_interpreter_speedup": programs[
            "looped_surface_code"]["tableau_interpreter_speedup"],
        "surface17_frame_speedup": programs[
            "surface17"]["frame_speedup"],
        "surface49_replay_speedup": programs["surface49"]["speedup"],
        "surface49_frame_speedup": programs[
            "surface49"]["frame_speedup"],
    }


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_branch_replay_speedup_active_reset():
    result = measure_program("active_reset", shots=2000)
    print(f"\nactive_reset: {result}")
    assert result["speedup"] >= SPEEDUP_TARGET


def test_branch_replay_speedup_cfc():
    result = measure_program("cfc", shots=2000)
    print(f"\ncfc: {result}")
    assert result["speedup"] >= SPEEDUP_TARGET


def test_mock_cfc_speedup():
    result = measure_mock_cfc(shots=2000)
    print(f"\nmock_cfc: {result}")
    assert result["speedup"] >= SPEEDUP_TARGET


def test_dead_store_sweep_reuse_speedup():
    result = measure_sweep_reuse(shots=2000)
    print(f"\ndead_store_sweep: {result}")
    assert result["speedup"] >= SPEEDUP_TARGET
    assert result["growth_shots_after_first_run"] == 0


def test_looped_surface_code_speedup():
    result = measure_looped_surface_code(shots=2000)
    print(f"\nlooped_surface_code: {result}")
    assert result["speedup"] >= SPEEDUP_TARGET
    assert result["tableau_interpreter_speedup"] >= \
        TABLEAU_SPEEDUP_TARGET


def test_surface17_speedup():
    result = measure_surface17(shots=2000)
    print(f"\nsurface17: {result}")
    assert result["speedup"] >= SPEEDUP_TARGET
    assert result["frame_speedup"] >= FRAME_SPEEDUP_TARGET


def test_surface49_speedup():
    result = measure_surface49(shots=2000)
    print(f"\nsurface49: {result}")
    assert result["speedup"] >= SPEEDUP_TARGET
    assert result["frame_speedup"] >= FRAME_SPEEDUP_TARGET


def test_scratch_spill_reload_speedup():
    result = measure_scratch_spill_reload(shots=2000)
    print(f"\nscratch_spill_reload: {result}")
    assert result["speedup"] >= SPEEDUP_TARGET


def test_audit_machinery_overhead():
    result = measure_audit_overhead(shots=2000)
    print(f"\nreplay_audit: {result}")
    assert result["audit_divergences"] == 0
    assert result["machinery_overhead"] <= AUDIT_MACHINERY_TARGET


def test_observability_overhead():
    result = measure_observability_overhead(shots=2000)
    print(f"\nobservability: {result}")
    assert result["overhead"] <= OBS_OVERHEAD_TARGET


def test_full_audit_bit_identity():
    result = verify_full_audit_identity(shots=400)
    print(f"\nreplay_audit_identity: {result}")
    assert len(result["scenarios"]) == 8
    for name, entry in result["scenarios"].items():
        assert entry["audit_divergences"] == 0, name
        assert entry["replay_audits"] > 0, name


# ----------------------------------------------------------------------
# script entry point
# ----------------------------------------------------------------------
def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shots", type=int, default=2000)
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero unless the CI speedup "
                             f"floor ({CHECK_TARGET}x) is met")
    parser.add_argument("--output", type=Path, default=None,
                        help="write the result JSON to this path")
    parser.add_argument("--trace-dir", type=Path, default=None,
                        help="export the traced run's telemetry "
                             "(Chrome trace, metrics snapshot, event "
                             "log, markdown report) to this directory")
    args = parser.parse_args()
    result = run_benchmark(shots=args.shots, trace_dir=args.trace_dir)
    print(json.dumps(result, indent=2))
    if args.output is not None:
        args.output.write_text(json.dumps(result, indent=2) + "\n")
        print(f"wrote {args.output}")
    if args.check and result["min_speedup"] < CHECK_TARGET:
        print(f"FAIL: speedup {result['min_speedup']}x below the "
              f"{CHECK_TARGET}x gate")
        return 1
    if args.check and result["tableau_interpreter_speedup"] < \
            TABLEAU_CHECK_TARGET:
        print(f"FAIL: tableau interpreter speedup "
              f"{result['tableau_interpreter_speedup']}x below the "
              f"{TABLEAU_CHECK_TARGET}x gate")
        return 1
    if args.check and result["surface17_frame_speedup"] < \
            FRAME_CHECK_TARGET:
        print(f"FAIL: surface-17 frame-batched speedup "
              f"{result['surface17_frame_speedup']}x below the "
              f"{FRAME_CHECK_TARGET}x gate")
        return 1
    if args.check and result["surface49_replay_speedup"] < \
            SURFACE49_CHECK_TARGET:
        print(f"FAIL: surface-49 replay speedup "
              f"{result['surface49_replay_speedup']}x below the "
              f"{SURFACE49_CHECK_TARGET}x gate")
        return 1
    if args.check and result["surface49_frame_speedup"] < \
            FRAME_CHECK_TARGET:
        print(f"FAIL: surface-49 frame-batched speedup "
              f"{result['surface49_frame_speedup']}x below the "
              f"{FRAME_CHECK_TARGET}x gate")
        return 1
    audit = result["replay_audit"]
    if args.check and audit["machinery_overhead"] > \
            AUDIT_MACHINERY_CHECK:
        print(f"FAIL: audit machinery overhead "
              f"{audit['machinery_overhead']} above the "
              f"{AUDIT_MACHINERY_CHECK} gate")
        return 1
    observability = result["observability"]
    if args.check and observability["overhead"] > OBS_OVERHEAD_CHECK:
        print(f"FAIL: observability overhead "
              f"{observability['overhead']} above the "
              f"{OBS_OVERHEAD_CHECK} gate")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
