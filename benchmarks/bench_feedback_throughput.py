"""E16 — branch-resolved replay: feedback-program shot throughput.

PR 1's shot-replay engine only covered feedback-free programs; every
workload exercising eQASM's headline features — fast conditional
execution (active reset, Fig. 4) and CFC via ``FMR`` (Fig. 5) — fell
back to the cycle-accurate interpreter.  This benchmark measures
end-to-end shot throughput of the interpreter vs the branch-resolved
timeline tree (:mod:`repro.uarch.replay`) on exactly those feedback
programs, and cross-checks per-outcome-path timing bit-identity plus
measurement statistics between the engines.

Runs two ways:

* under pytest (``pytest benchmarks/bench_feedback_throughput.py``)
  as a regression gate asserting the >= 5x speedup target;
* as a script (``python benchmarks/bench_feedback_throughput.py
  [--shots N] [--check] [--output BENCH_feedback_throughput.json]``)
  — the recorded numbers live in ``BENCH_feedback_throughput.json``
  at the repository root.  ``--check`` gates at the CI floor (3x),
  below the 5x recording target, so shared-runner jitter does not
  flake the build.
"""

import argparse
import json
import math
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # script mode without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.core import Assembler, two_qubit_instantiation
from repro.experiments.cfc import CFC_TWO_ROUND_PROGRAM
from repro.experiments.reset import FIG4_PROGRAM
from repro.quantum import NoiseModel, QuantumPlant
from repro.uarch import QuMAv2

#: Required end-to-end speedup when recording BENCH_ numbers.
SPEEDUP_TARGET = 5.0
#: CI gate (``--check``): regressions below this fail the build.
CHECK_TARGET = 3.0

PROGRAMS = {"active_reset": FIG4_PROGRAM, "cfc": CFC_TWO_ROUND_PROGRAM}


def _make_machine(text: str, seed: int) -> QuMAv2:
    isa = two_qubit_instantiation()
    plant = QuantumPlant(isa.topology, noise=NoiseModel(),
                         rng=np.random.default_rng(seed))
    machine = QuMAv2(isa, plant)
    machine.load(Assembler(isa).assemble_text(text))
    return machine


def _time_run(machine: QuMAv2, shots: int, use_replay: bool):
    start = time.perf_counter()
    traces = machine.run(shots, use_replay=use_replay)
    elapsed = time.perf_counter() - start
    return traces, elapsed


def measure_program(name: str, shots: int = 2000, seed: int = 13) -> dict:
    """Throughput of both engines on one program, with cross-checks."""
    interpreter = _make_machine(PROGRAMS[name], seed)
    interp_traces, interp_s = _time_run(interpreter, shots,
                                        use_replay=False)
    assert interpreter.last_run_engine == "interpreter"

    replay = _make_machine(PROGRAMS[name], seed)
    replay_traces, replay_s = _time_run(replay, shots, use_replay=True)
    assert replay.last_run_engine == "replay", \
        f"replay refused: {replay.replay_fallback_reason}"
    stats = replay.engine_stats

    # Per-outcome-path timing equivalence: every path the replay engine
    # produced must have bit-identical timing records to an interpreter
    # trace that followed the same reported outcomes.
    interp_by_path = {}
    for trace in interp_traces:
        interp_by_path.setdefault(trace.outcome_path(), trace)
    checked = 0
    for trace in replay_traces:
        reference = interp_by_path.get(trace.outcome_path())
        if reference is None:
            continue
        assert reference.triggers == trace.triggers
        assert reference.slips == trace.slips
        assert reference.classical_time_ns == trace.classical_time_ns
        checked += 1
    assert checked > 0, "no outcome path common to both engines"

    # Statistical equivalence of the final per-qubit outcome (~4.5
    # sigma of the difference of two p=0.5 samples, so low-shot smoke
    # runs stay sound).
    tolerance = 4.5 * math.sqrt(0.5 / shots)
    for qubit in {r.qubit for r in interp_traces[0].results}:
        interp_p = sum(t.last_result(qubit) for t in interp_traces) / shots
        replay_p = sum(t.last_result(qubit) for t in replay_traces) / shots
        assert abs(interp_p - replay_p) < tolerance, \
            f"{name} qubit {qubit}: {interp_p} vs {replay_p}"

    return {
        "shots": shots,
        "interpreter_shots_per_sec": round(shots / interp_s, 1),
        "replay_shots_per_sec": round(shots / replay_s, 1),
        "speedup": round(interp_s / replay_s, 2),
        "paths_checked": checked,
        "engine_stats": stats.as_dict(),
    }


def run_benchmark(shots: int = 2000) -> dict:
    """Measure every program; returns the JSON-ready result tree."""
    programs = {name: measure_program(name, shots=shots)
                for name in PROGRAMS}
    return {
        "benchmark": "bench_feedback_throughput",
        "description": "interpreter vs branch-resolved replay tree, "
                       "feedback programs (active reset / CFC), "
                       "end-to-end shots/sec",
        "speedup_target": SPEEDUP_TARGET,
        "check_target": CHECK_TARGET,
        "programs": programs,
        "min_speedup": min(entry["speedup"]
                           for entry in programs.values()),
    }


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_branch_replay_speedup_active_reset():
    result = measure_program("active_reset", shots=2000)
    print(f"\nactive_reset: {result}")
    assert result["speedup"] >= SPEEDUP_TARGET


def test_branch_replay_speedup_cfc():
    result = measure_program("cfc", shots=2000)
    print(f"\ncfc: {result}")
    assert result["speedup"] >= SPEEDUP_TARGET


# ----------------------------------------------------------------------
# script entry point
# ----------------------------------------------------------------------
def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shots", type=int, default=2000)
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero unless the CI speedup "
                             f"floor ({CHECK_TARGET}x) is met")
    parser.add_argument("--output", type=Path, default=None,
                        help="write the result JSON to this path")
    args = parser.parse_args()
    result = run_benchmark(shots=args.shots)
    print(json.dumps(result, indent=2))
    if args.output is not None:
        args.output.write_text(json.dumps(result, indent=2) + "\n")
        print(f"wrote {args.output}")
    if args.check and result["min_speedup"] < CHECK_TARGET:
        print(f"FAIL: speedup {result['min_speedup']}x below the "
              f"{CHECK_TARGET}x gate")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
