"""E8 — Section 5: two-qubit Grover's search with MLE tomography.

Paper: algorithmic fidelity (readout-corrected) 85.6 %, limited by the
CZ gate.  The reproduction runs all four oracles through the full
stack, performs nine-setting Pauli tomography with readout correction
and MLE projection, and reports the per-oracle and average fidelities.
"""

import pytest

from repro.experiments.grover import (
    PAPER_GROVER_FIDELITY,
    format_grover_report,
    run_grover_experiment,
)
from repro.quantum.noise import (
    DecoherenceModel,
    GateErrorModel,
    NoiseModel,
    ReadoutErrorModel,
)

SHOTS = 150


def test_grover_tomography_fidelity(benchmark):
    result = benchmark.pedantic(run_grover_experiment,
                                kwargs={"shots": SHOTS, "seed": 17},
                                rounds=1, iterations=1)
    print()
    print(format_grover_report(result))
    assert result.average_fidelity == pytest.approx(
        PAPER_GROVER_FIDELITY, abs=0.06)
    # Every oracle individually lands in a plausible band.
    for fidelity in result.fidelities.values():
        assert 0.7 < fidelity < 0.97


def test_grover_is_cz_limited(benchmark):
    """Ablation for "limited by the CZ gate": halving the CZ error
    raises the fidelity markedly; removing single-qubit error barely
    moves it."""

    def run_variants():
        low_cz = NoiseModel(
            decoherence=DecoherenceModel(),
            readout=ReadoutErrorModel(),
            gate_error=GateErrorModel(single_qubit_error=1.5e-3,
                                      two_qubit_error=0.035))
        no_1q = NoiseModel(
            decoherence=DecoherenceModel(),
            readout=ReadoutErrorModel(),
            gate_error=GateErrorModel(single_qubit_error=0.0,
                                      two_qubit_error=0.07))
        base = run_grover_experiment(shots=100, seed=23)
        better_cz = run_grover_experiment(shots=100, seed=23,
                                          noise=low_cz)
        no_single = run_grover_experiment(shots=100, seed=23,
                                          noise=no_1q)
        return base, better_cz, no_single

    base, better_cz, no_single = benchmark.pedantic(run_variants,
                                                    rounds=1,
                                                    iterations=1)
    print(f"\nbaseline:            {base.average_fidelity * 100:.1f}%")
    print(f"CZ error halved:     {better_cz.average_fidelity * 100:.1f}%")
    print(f"no 1q gate error:    {no_single.average_fidelity * 100:.1f}%")
    assert better_cz.average_fidelity > base.average_fidelity + 0.02
    assert abs(no_single.average_fidelity - base.average_fidelity) < 0.05
