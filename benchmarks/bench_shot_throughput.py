"""E15 — shot-replay fast path: compile-once/replay-N throughput.

The Section 5 experiments execute one assembled binary for thousands
of shots.  This benchmark measures end-to-end shot throughput of the
full interpreter vs the shot-replay engine
(:mod:`repro.uarch.replay`) on the two feedback-free workhorse
programs — the Rabi calibration step and the Fig. 3 AllXY routine —
and cross-checks that both engines agree on timing and statistics.

Runs two ways:

* under pytest (``pytest benchmarks/bench_shot_throughput.py``) as a
  regression gate asserting the >= 5x speedup target;
* as a script (``python benchmarks/bench_shot_throughput.py
  [--shots N] [--check] [--output BENCH_shot_throughput.json]``) —
  the recorded numbers live in ``BENCH_shot_throughput.json`` at the
  repository root.
"""

import argparse
import json
import math
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # script mode without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.core import Assembler, two_qubit_instantiation
from repro.quantum import NoiseModel, QuantumPlant
from repro.uarch import QuMAv2

#: Required end-to-end speedup of replay over the interpreter.
SPEEDUP_TARGET = 5.0

RABI_PROGRAM = """
SMIS S2, {2}
QWAIT 10000
X90 S2
MEASZ S2
QWAIT 50
STOP
"""

ALLXY_PROGRAM = """
SMIS S0, {0}
SMIS S2, {2}
SMIS S7, {0, 2}
QWAIT 10000
0, Y S7
1, X90 S0 | X S2
1, MEASZ S7
QWAIT 50
STOP
"""

PROGRAMS = {"rabi": RABI_PROGRAM, "allxy": ALLXY_PROGRAM}


def _make_machine(text: str, seed: int) -> QuMAv2:
    isa = two_qubit_instantiation()
    plant = QuantumPlant(isa.topology, noise=NoiseModel(),
                         rng=np.random.default_rng(seed))
    machine = QuMAv2(isa, plant)
    machine.load(Assembler(isa).assemble_text(text))
    return machine


def _time_run(machine: QuMAv2, shots: int, use_replay: bool):
    start = time.perf_counter()
    traces = machine.run(shots, use_replay=use_replay)
    elapsed = time.perf_counter() - start
    return traces, elapsed


def measure_program(name: str, shots: int = 1000, seed: int = 13) -> dict:
    """Throughput of both engines on one program, with a cross-check."""
    interpreter = _make_machine(PROGRAMS[name], seed)
    interp_traces, interp_s = _time_run(interpreter, shots,
                                        use_replay=False)
    assert interpreter.last_run_engine == "interpreter"

    replay = _make_machine(PROGRAMS[name], seed)
    replay_traces, replay_s = _time_run(replay, shots, use_replay=True)
    assert replay.last_run_engine == "replay", \
        f"replay refused: {replay.replay_fallback_reason}"
    # The Rabi/AllXY scenarios run under the calibrated T1/T2 noise
    # model, which is not Pauli — backend selection must keep them on
    # the dense density matrix (the stabilizer backend's static pass
    # rejects the noise, not the gates).
    assert replay.last_plant_backend == "dense", \
        f"expected the dense backend for {name}"

    # Equivalence spot-checks: identical timing records, compatible
    # measurement statistics.  The tolerance scales with the shot
    # count (~4.5 sigma of the difference of two p=0.5 samples) so
    # low-shot smoke runs stay statistically sound.
    assert interp_traces[0].triggers == replay_traces[-1].triggers
    assert interp_traces[0].slips == replay_traces[-1].slips
    tolerance = 4.5 * math.sqrt(0.5 / shots)
    for qubit in {r.qubit for r in interp_traces[0].results}:
        interp_p = sum(t.last_result(qubit) for t in interp_traces) / shots
        replay_p = sum(t.last_result(qubit) for t in replay_traces) / shots
        assert abs(interp_p - replay_p) < tolerance, \
            f"{name} qubit {qubit}: {interp_p} vs {replay_p}"

    return {
        "shots": shots,
        "interpreter_shots_per_sec": round(shots / interp_s, 1),
        "replay_shots_per_sec": round(shots / replay_s, 1),
        "speedup": round(interp_s / replay_s, 2),
    }


def run_benchmark(shots: int = 1000) -> dict:
    """Measure every program; returns the JSON-ready result tree."""
    programs = {name: measure_program(name, shots=shots)
                for name in PROGRAMS}
    return {
        "benchmark": "bench_shot_throughput",
        "description": "interpreter vs shot-replay engine, "
                       "feedback-free programs, end-to-end shots/sec",
        "speedup_target": SPEEDUP_TARGET,
        "programs": programs,
        "min_speedup": min(entry["speedup"]
                           for entry in programs.values()),
    }


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_replay_speedup_rabi():
    result = measure_program("rabi", shots=1000)
    print(f"\nrabi: {result}")
    assert result["speedup"] >= SPEEDUP_TARGET


def test_replay_speedup_allxy():
    result = measure_program("allxy", shots=1000)
    print(f"\nallxy: {result}")
    assert result["speedup"] >= SPEEDUP_TARGET


# ----------------------------------------------------------------------
# script entry point
# ----------------------------------------------------------------------
def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shots", type=int, default=1000)
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero unless the speedup target "
                             "is met")
    parser.add_argument("--output", type=Path, default=None,
                        help="write the result JSON to this path")
    args = parser.parse_args()
    result = run_benchmark(shots=args.shots)
    print(json.dumps(result, indent=2))
    if args.output is not None:
        args.output.write_text(json.dumps(result, indent=2) + "\n")
        print(f"wrote {args.output}")
    if args.check and result["min_speedup"] < SPEEDUP_TARGET:
        print(f"FAIL: speedup {result['min_speedup']}x below the "
              f"{SPEEDUP_TARGET}x target")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
