"""E5 — Section 5: active qubit reset via fast conditional execution.

Runs the exact Fig. 4 program.  Paper: P(|0>) = 82.7 % after the
conditional C_X, limited by the readout fidelity.
"""

import pytest

from repro.experiments.reset import (
    PAPER_RESET_PROBABILITY,
    format_reset_report,
    run_active_reset_experiment,
)
from repro.quantum import NoiseModel

SHOTS = 3000


def test_active_reset(benchmark):
    result = benchmark.pedantic(run_active_reset_experiment,
                                kwargs={"shots": SHOTS, "seed": 5},
                                rounds=1, iterations=1)
    print()
    print(format_reset_report(result))
    assert result.ground_probability == pytest.approx(
        PAPER_RESET_PROBABILITY, abs=0.04)
    # The C_X fires on roughly half the shots (X90 preparation).
    assert result.conditional_executed_fraction == pytest.approx(
        0.5, abs=0.05)


def test_active_reset_is_readout_limited(benchmark):
    """Ablation: with perfect readout the same program resets exactly."""

    def run_noiseless():
        return run_active_reset_experiment(
            shots=400, seed=9, noise=NoiseModel.noiseless())

    result = benchmark.pedantic(run_noiseless, rounds=1, iterations=1)
    print(f"\nnoiseless reset: P(|0>) = "
          f"{result.ground_probability * 100:.1f}% (readout was the limit)")
    assert result.ground_probability == 1.0
