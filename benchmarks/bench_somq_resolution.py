"""E11 — Table 2: micro-operation selection-signal resolution.

Checks the OpSel truth table on the Fig. 6 topology (including the
paper's worked example for qubit 0 / edges 0, 1, 8, 9) and times the
two-step mask resolution of the quantum microinstruction buffer, which
runs once per VLIW lane per bundle word.
"""

import pytest

from repro.core import seven_qubit_instantiation
from repro.uarch import OpSel, QuantumPipeline


@pytest.fixture(scope="module")
def pipeline():
    return QuantumPipeline(seven_qubit_instantiation())


def test_table2_selection_signals(benchmark, pipeline):
    def resolve_all():
        results = []
        # Every single-edge mask plus every disjoint two-edge pair.
        for edge in range(16):
            results.append(pipeline.resolve_pair_mask(1 << edge))
        results.append(pipeline.resolve_single_mask(0b1111111))
        return results

    results = benchmark(resolve_all)
    # The paper's worked example: OpSel_0 from edges 0/9 (target) and
    # 1/8 (source).
    assert results[0][0] is OpSel.TGT
    assert results[9][0] is OpSel.TGT
    assert results[1][0] is OpSel.SRC
    assert results[8][0] is OpSel.SRC
    # Full single-qubit mask selects BOTH ('11') everywhere.
    assert all(signal is OpSel.BOTH for signal in results[-1].values())
    print("\nOpSel resolution verified for all 16 edges + full mask")


def test_somq_expansion_throughput(benchmark, pipeline):
    """Time the full lane path: microcode + mask -> per-qubit ops."""
    from repro.core.instructions import Bundle, BundleOperation, SMIS
    pipeline.reset()
    pipeline.process_smis(SMIS(sd=7, qubits=frozenset(range(7))))
    bundle = Bundle(operations=(BundleOperation("X", ("S", 7)),), pi=1)

    def expand():
        pipeline.reset()
        pipeline.process_smis(SMIS(sd=7, qubits=frozenset(range(7))))
        _, entries = pipeline.process_bundle(bundle, 0.0)
        return entries

    entries = benchmark(expand)
    assert len(entries) == 7
