"""E3 — Fig. 11: the two-qubit AllXY staircase.

Runs the 42 interleaved gate-pair combinations on the simulated
two-qubit setup (full stack: OpenQL-like compile -> assemble -> QuMA v2
-> noisy plant), corrects for readout errors, and compares each point
against the ideal staircase (the red line of Fig. 11).
"""

import pytest

from repro.experiments.allxy import (
    format_allxy_table,
    run_allxy_experiment,
)

SHOTS = 150


def test_fig11_two_qubit_allxy(benchmark):
    result = benchmark.pedantic(run_allxy_experiment,
                                kwargs={"shots": SHOTS, "seed": 7},
                                rounds=1, iterations=1)
    print()
    print(format_allxy_table(result))
    # "Matches well with the expectation": small RMS deviation and all
    # three plateaus present on both qubits.
    assert result.rms_error_a() < 0.08
    assert result.rms_error_b() < 0.08
    for series in (result.measured_a, result.measured_b):
        assert min(series) < 0.15          # the 0.0 plateau
        assert max(series) > 0.85          # the 1.0 plateau
        mid = [v for v in series if 0.3 < v < 0.7]
        assert len(mid) >= 10              # the 0.5 plateau
    # Qubit A doubles each plateau; qubit B repeats the staircase:
    # its first half equals its second half (within noise).
    first_half = result.measured_b[:21]
    second_half = result.measured_b[21:]
    worst = max(abs(a - b) for a, b in zip(first_half, second_half))
    assert worst < 0.25
