"""E6 — Section 5: CFC verification with mock measurement results.

The paper programs the UHFQC to fabricate alternating results for the
Fig. 5 program and verifies on a scope that the conditioned operation
alternates X, Y, X, Y ...  The reproduction injects the same mock
stream into the measurement unit and checks the plant saw the exact
alternation.
"""

import pytest

from repro.experiments.cfc import run_cfc_verification

ROUNDS = 32


def test_cfc_mock_alternation(benchmark):
    result = benchmark.pedantic(run_cfc_verification,
                                kwargs={"rounds": ROUNDS, "seed": 3},
                                rounds=1, iterations=1)
    print()
    print("applied sequence:", " ".join(result.applied_operations[:16]),
          "...")
    assert len(result.applied_operations) == ROUNDS
    assert result.alternates
    assert result.applied_operations == ["X", "Y"] * (ROUNDS // 2)
