"""Extension bench — surface-code syndrome extraction and the SOMQ
claim of Section 4.2.

"An application that would benefit significantly from SOMQ is quantum
error correction, which requires performing well-patterned error
syndrome measurements repeatedly presenting high parallelism."

Quantifies that: instruction counts for repeated distance-2 syndrome
rounds with and without SOMQ, plus the end-to-end detection experiment
on the machine.
"""

import pytest

from repro.compiler import CodegenOptions, count_instructions, \
    schedule_asap
from repro.core.operations import default_operation_set
from repro.experiments.surface_code import run_surface_code_experiment
from repro.workloads.surface_code import surface_code_circuit


def test_somq_benefit_for_syndrome_extraction(benchmark):
    ops = default_operation_set()
    circuit = surface_code_circuit(rounds=32, include_x_check=True)

    def count_both():
        schedule = schedule_asap(circuit, ops)
        with_somq = count_instructions(schedule, CodegenOptions(
            timing="ts3", pi_width=3, somq=True, vliw_width=2))
        without = count_instructions(schedule, CodegenOptions(
            timing="ts3", pi_width=3, somq=False, vliw_width=2))
        return with_somq, without

    with_somq, without = benchmark.pedantic(count_both, rounds=1,
                                            iterations=1)
    reduction = 1.0 - with_somq / without
    print(f"\n32 syndrome rounds: {without} words without SOMQ, "
          f"{with_somq} with SOMQ ({reduction * 100:.1f}% reduction)")
    # "Significant" benefit: several times the SR-class few percent
    # (our rounds include the serial fast-conditional ancilla resets,
    # which dilute the merging the bare checks would show).
    assert reduction > 0.10


def test_error_detection_end_to_end(benchmark):
    def run_detection():
        clean = run_surface_code_experiment(rounds=2, shots=20)
        faulty = run_surface_code_experiment(
            rounds=2, error=("X", 5), error_after_round=0, shots=20)
        return clean, faulty

    clean, faulty = benchmark.pedantic(run_detection, rounds=1,
                                       iterations=1)
    print(f"\nclean round-1 detection: "
          f"{clean.detection_fraction(1) * 100:.0f}%, "
          f"with X on q5: {faulty.detection_fraction(1) * 100:.0f}%")
    assert clean.detection_fraction(1) == 0.0
    assert faulty.detection_fraction(1) == 1.0
